"""Differential replay of one trace across every register-file architecture.

The paper's central claim is that banked and cached register files are
*architecturally transparent*: they change timing, never results.  This
module is the end-to-end check of that claim.  One materialized
:class:`~repro.workloads.trace.Trace` is replayed through every
architecture of :func:`validation_matrix` with a commit-stream observer
attached; the observed commit streams are compared — commit count,
rolling commit-order checksum, committed architectural register state —
against the pipeline-independent
:class:`~repro.validate.oracle.ArchitecturalOracle`.  Any disagreement
becomes a :class:`~repro.validate.report.Divergence` carrying the first
divergent commit index and the two canonical records, which together
with the scenario seed is a minimized repro.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro.errors import SimulationError, ValidationError
from repro.experiments.common import (
    OneLevelBankedFactory,
    RegfileFactory,
    RegisterFileCacheFactory,
    SingleBankedFactory,
)
from repro.pipeline.config import ProcessorConfig
from repro.pipeline.processor import simulate
from repro.trace import record_trace, replay_simulate
from repro.validate.faults import FaultInjectingObserver, InjectedFault
from repro.validate.observer import DEFAULT_CHECKPOINT_INTERVAL, CommitObserver
from repro.validate.oracle import OracleResult, run_oracle
from repro.validate.report import (
    ArchitectureOutcome,
    Divergence,
    ScenarioValidation,
)
from repro.workloads.trace import Trace


def validation_matrix() -> Dict[str, RegfileFactory]:
    """The full architecture matrix every differential run covers.

    Spans all three families of the paper: the monolithic single-banked
    file (all three timings), the one-level interleaved-bank
    organisation (two bank counts), and the two-level register file
    cache across its caching policies, both fetch policies and a
    constrained-port point.
    """
    return {
        "monolithic-1c": SingleBankedFactory(
            latency=1, bypass_levels=1, name="1-cycle single-banked"
        ),
        "monolithic-2c-full-bypass": SingleBankedFactory(
            latency=2, bypass_levels=2, name="2-cycle single-banked, full bypass"
        ),
        "monolithic-2c-1-bypass": SingleBankedFactory(
            latency=2, bypass_levels=1, name="2-cycle single-banked, 1 bypass"
        ),
        "banked-2x2r2w": OneLevelBankedFactory(
            num_banks=2, read_ports_per_bank=2, write_ports_per_bank=2
        ),
        "banked-4x2r2w": OneLevelBankedFactory(
            num_banks=4, read_ports_per_bank=2, write_ports_per_bank=2
        ),
        "rfc-non-bypass": RegisterFileCacheFactory(
            caching="non-bypass", fetch="prefetch-first-pair"
        ),
        "rfc-ready": RegisterFileCacheFactory(
            caching="ready", fetch="prefetch-first-pair"
        ),
        "rfc-always-demand": RegisterFileCacheFactory(
            caching="always", fetch="fetch-on-demand"
        ),
        "rfc-never-demand": RegisterFileCacheFactory(
            caching="never", fetch="fetch-on-demand"
        ),
        "rfc-non-bypass-ported": RegisterFileCacheFactory(
            caching="non-bypass",
            fetch="fetch-on-demand",
            upper_read_ports=4,
            upper_write_ports=2,
            lower_write_ports=4,
            buses=2,
        ),
    }


def filter_matrix(
    architectures: Dict[str, RegfileFactory], name_filter: Optional[str]
) -> Dict[str, RegfileFactory]:
    """Restrict a matrix to names containing ``name_filter``.

    Raises
    ------
    ValidationError
        If the filter matches nothing, listing the known names.
    """
    if name_filter is None:
        return dict(architectures)
    selected = {
        name: factory
        for name, factory in architectures.items()
        if name_filter in name
    }
    if not selected:
        raise ValidationError(
            f"architecture filter {name_filter!r} matches nothing "
            f"(known: {', '.join(architectures)})"
        )
    return selected


def _first_divergent(
    oracle: OracleResult, observed_log: Optional[list]
) -> Tuple[Optional[int], Optional[str], Optional[str]]:
    """Locate the first commit where the two logs disagree."""
    expected_log = oracle.log
    if expected_log is None or observed_log is None:
        return None, None, None
    for index, (expected, observed) in enumerate(zip(expected_log, observed_log)):
        if expected != observed:
            return index, expected, observed
    shorter = min(len(expected_log), len(observed_log))
    expected = expected_log[shorter] if shorter < len(expected_log) else None
    observed = observed_log[shorter] if shorter < len(observed_log) else None
    return shorter, expected, observed


def run_differential(
    trace: Trace,
    config: ProcessorConfig,
    architectures: Optional[Dict[str, RegfileFactory]] = None,
    scenario: Optional[dict] = None,
    checkpoint_interval: int = DEFAULT_CHECKPOINT_INTERVAL,
    fault: Optional[InjectedFault] = None,
    repro: str = "",
    use_trace_replay: bool = True,
) -> ScenarioValidation:
    """Replay ``trace`` through every architecture and diff against the oracle.

    ``config.max_instructions`` bounds the committed prefix; every
    architecture and the oracle consume exactly the same prefix of the
    same materialized trace.  By default the frontend (fetch grouping,
    branch prediction, I-cache) runs **once** through the shared
    :mod:`repro.trace` recorder and every architecture replays the
    decoded stream; ``use_trace_replay=False`` (the CLI's
    ``--no-trace-replay``) runs each architecture with its own live
    frontend instead — results are bit-identical either way.  ``fault``
    (test use only, see :mod:`repro.validate.faults`) corrupts the
    observation of one architecture so the detection machinery itself
    can be verified.
    """
    matrix = dict(architectures) if architectures is not None else validation_matrix()
    if not matrix:
        raise ValidationError("differential run needs at least one architecture")
    if fault is not None and fault.architecture not in matrix:
        raise ValidationError(
            f"fault targets unknown architecture {fault.architecture!r} "
            f"(known: {', '.join(matrix)})"
        )

    decoded = None
    if use_trace_replay:
        decoded = record_trace(
            trace.name,
            iter(trace),
            config,
            {
                "kind": "validate-scenario",
                "name": trace.name,
                "instructions": len(trace),
            },
        )

    oracle = run_oracle(
        iter(trace), config.max_instructions, checkpoint_interval=checkpoint_interval
    )
    result = ScenarioValidation(
        scenario=dict(scenario or {"benchmark": trace.name}),
        oracle=oracle.snapshot(),
    )

    fault_observer: Optional[FaultInjectingObserver] = None
    for name, factory in matrix.items():
        if fault is not None and fault.architecture == name:
            fault_observer = FaultInjectingObserver(
                fault, checkpoint_interval=checkpoint_interval
            )
            observer: CommitObserver = fault_observer
        else:
            observer = CommitObserver(checkpoint_interval=checkpoint_interval)
        try:
            if decoded is not None:
                stats = replay_simulate(
                    decoded,
                    factory,
                    config,
                    benchmark_name=trace.name,
                    commit_observer=observer,
                )
            else:
                stats = simulate(
                    iter(trace),
                    factory,
                    config,
                    benchmark_name=trace.name,
                    commit_observer=observer,
                )
        except SimulationError as error:
            result.outcomes.append(
                ArchitectureOutcome(architecture=name, error=str(error))
            )
            result.divergences.append(
                Divergence(
                    architecture=name,
                    kind="simulation_error",
                    detail=str(error),
                    repro=repro,
                )
            )
            continue

        snapshot = observer.snapshot()
        result.outcomes.append(
            ArchitectureOutcome(
                architecture=name,
                count=snapshot["count"],
                digest=snapshot["digest"],
                state=snapshot["state"],
                checkpoints=snapshot["checkpoints"],
                ipc=round(stats.ipc, 6),
                cycles=stats.cycles,
            )
        )
        result.divergences.extend(
            _diff_against_oracle(name, oracle, observer, repro)
        )

    if fault is not None and (fault_observer is None or not fault_observer.triggered):
        # A requested fault that never fired must not produce a clean
        # verdict: a self-test of the detector would "pass" vacuously
        # (e.g. a commit index beyond the committed prefix).
        result.divergences.append(
            Divergence(
                architecture=fault.architecture,
                kind="fault_not_triggered",
                detail=(
                    f"injected fault at commit {fault.commit_index} never fired "
                    f"(only {oracle.count} instructions committed)"
                ),
                repro=repro,
            )
        )
    return result


def _diff_against_oracle(
    name: str, oracle: OracleResult, observer: CommitObserver, repro: str
) -> list:
    """All divergences between one architecture's observation and the oracle."""
    divergences = []
    accumulator = observer.accumulator
    if accumulator.count != oracle.count:
        index, expected, observed = _first_divergent(oracle, accumulator.log)
        divergences.append(
            Divergence(
                architecture=name,
                kind="commit_count",
                detail=(
                    f"committed {accumulator.count} instructions, "
                    f"oracle committed {oracle.count}"
                ),
                first_divergent_commit=index,
                expected_record=expected,
                observed_record=observed,
                repro=repro,
            )
        )
    elif accumulator.digest() != oracle.digest:
        index, expected, observed = _first_divergent(oracle, accumulator.log)
        divergences.append(
            Divergence(
                architecture=name,
                kind="commit_stream",
                detail="commit-order checksum mismatch",
                first_divergent_commit=index,
                expected_record=expected,
                observed_record=observed,
                repro=repro,
            )
        )
    # The state comparison is redundant with the checksum when both sides
    # derive state from the same records — which is exactly why it is
    # kept separate: it catches corruption of the state-tracking path
    # itself, and reads better in reports.
    observed_state = accumulator.state_snapshot()
    if not divergences and observed_state != oracle.state:
        changed = sorted(
            set(observed_state.items()) ^ set(oracle.state.items())
        )
        divergences.append(
            Divergence(
                architecture=name,
                kind="architectural_state",
                detail=(
                    f"final register state differs in "
                    f"{len(changed)} binding(s): "
                    + ", ".join(f"{reg}={seq}" for reg, seq in changed[:6])
                ),
                repro=repro,
            )
        )
    return divergences
