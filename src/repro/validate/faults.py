"""Fault injection for validating the validator (test use only).

A differential checker that has never been seen to fail proves nothing,
so the subsystem ships a deliberate way to break one architecture's
observed commit stream: :class:`InjectedFault` names an architecture and
a commit index, and :class:`FaultInjectingObserver` corrupts the
instruction *as observed* at that index — the simulation itself is
untouched, but the checksum, the commit log and the committed
architectural state all absorb the corruption, exactly as a real
misbehaving pipeline would feed them.  The differential runner must then
report a divergence whose ``first_divergent_commit`` equals the injected
index.

Nothing in production paths constructs these; they exist for the test
suite and for ``python -m repro.validate --inject-fault`` self-checks.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.errors import ValidationError
from repro.isa.instruction import (
    NUM_LOGICAL_PER_CLASS,
    DynamicInstruction,
    LogicalRegister,
    RegisterClass,
)
from repro.validate.observer import DEFAULT_CHECKPOINT_INTERVAL, CommitObserver


@dataclass(frozen=True)
class InjectedFault:
    """Corrupt the observed commit at ``commit_index`` on one architecture."""

    architecture: str
    commit_index: int

    def __post_init__(self) -> None:
        if self.commit_index < 0:
            raise ValidationError("fault commit_index cannot be negative")

    @classmethod
    def parse(cls, spec: str) -> "InjectedFault":
        """Parse an ``ARCHITECTURE:INDEX`` command-line specification."""
        architecture, separator, index_text = spec.rpartition(":")
        if not separator or not architecture:
            raise ValidationError(
                f"bad fault spec {spec!r}; expected ARCHITECTURE:COMMIT_INDEX"
            )
        try:
            index = int(index_text)
        except ValueError as exc:
            raise ValidationError(
                f"bad fault commit index {index_text!r} in {spec!r}"
            ) from exc
        return cls(architecture=architecture, commit_index=index)


def corrupt_instruction(instruction: DynamicInstruction) -> DynamicInstruction:
    """A copy of ``instruction`` with its destination register perturbed."""
    dest = instruction.dest
    if dest is not None:
        wrong = LogicalRegister(dest.reg_class, (dest.index + 1) % NUM_LOGICAL_PER_CLASS)
    else:
        wrong = LogicalRegister(RegisterClass.INT, 7)
    return replace(instruction, dest=wrong)


class FaultInjectingObserver(CommitObserver):
    """A :class:`CommitObserver` that mis-records one commit."""

    def __init__(
        self,
        fault: InjectedFault,
        checkpoint_interval: int = DEFAULT_CHECKPOINT_INTERVAL,
        keep_log: bool = True,
    ) -> None:
        super().__init__(checkpoint_interval=checkpoint_interval, keep_log=keep_log)
        self.fault = fault
        #: Whether the faulted commit index was actually reached; a fault
        #: that never fires must not let a self-test pass vacuously.
        self.triggered = False

    def on_commit(self, renamed, cycle: int) -> None:
        instruction = renamed.instruction
        if self.accumulator.count == self.fault.commit_index:
            instruction = corrupt_instruction(instruction)
            self.triggered = True
        self.accumulator.record(instruction)
