"""Seeded scenario fuzzer.

Every hand-written test pins one workload on one configuration; the
fuzzer instead derives, from a single integer seed, a *scenario*: a
workload (a SPEC95-like synthetic profile with a random stream seed, a
hand-written kernel, or a freshly generated random-but-valid assembly
program) plus a random :class:`~repro.pipeline.config.ProcessorConfig`
point (widths, window/ROB/LSQ sizes, physical register counts...).  The
differential runner then replays the scenario's trace across the full
architecture matrix.  Scenarios are pure functions of ``(seed, quick)``,
so any failure reproduces from its seed alone.

Generated programs are valid and terminating by construction: they are
assembled by :func:`repro.isa.assembler.assemble` (which rejects
malformed text), all backward branches are counted loops with a
dedicated counter register no body instruction may overwrite, and all
other control flow is strictly forward.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Tuple

from repro.isa.assembler import assemble
from repro.pipeline.config import ProcessorConfig
from repro.workloads.kernels import KERNELS, kernel_workload
from repro.workloads.profiles import get_profile
from repro.workloads.spec_suites import SPEC95
from repro.workloads.synthetic import SyntheticWorkload
from repro.workloads.trace import Trace, materialize

#: Integer registers reserved by generated programs: r1/r2 are memory
#: base pointers, r3 the loop counter, r4 the zero constant.  Body
#: instructions never write them, which is what guarantees termination.
_INT_DEST_POOL = tuple(f"r{i}" for i in range(5, 16))
_FP_DEST_POOL = tuple(f"f{i}" for i in range(1, 11))
_BASE_REGISTERS = ("r1", "r2")


@dataclass(frozen=True)
class FuzzScenario:
    """One reproducible validation scenario."""

    seed: int
    source: str  # "synthetic", "kernel" or "program"
    benchmark: str
    workload_seed: int
    instructions: int
    stream_slack: int
    config_fields: Tuple[Tuple[str, object], ...] = ()
    program_text: str = field(default="", repr=False)

    def config(self) -> ProcessorConfig:
        return ProcessorConfig(
            max_instructions=self.instructions, **dict(self.config_fields)
        )

    def build_trace(self) -> Trace:
        length = self.instructions + self.stream_slack
        if self.source == "synthetic":
            workload = SyntheticWorkload(
                get_profile(self.benchmark), seed=self.workload_seed
            )
            return materialize(self.benchmark, workload.instructions(length))
        if self.source == "kernel":
            return materialize(
                self.benchmark, kernel_workload(self.benchmark, max_instructions=length)
            )
        program = assemble(self.program_text)
        return materialize(self.benchmark, program.run(max_instructions=length))

    def describe(self) -> dict:
        """JSON-serializable descriptor embedded in validation reports."""
        descriptor: dict = {
            "seed": self.seed,
            "source": self.source,
            "benchmark": self.benchmark,
            "workload_seed": self.workload_seed,
            "instructions": self.instructions,
            "stream_slack": self.stream_slack,
            "config": dict(self.config_fields),
        }
        if self.program_text:
            descriptor["program_text"] = self.program_text
        return descriptor


def generate_scenario(seed: int, quick: bool = False) -> FuzzScenario:
    """Derive the scenario of ``seed`` (deterministic across processes)."""
    # String seeding hashes the bytes (no PYTHONHASHSEED dependence), so
    # workers and repro runs agree on every draw.
    rng = random.Random(f"repro.validate:{seed}")
    instructions = rng.randrange(200, 500) if quick else rng.randrange(400, 1200)
    draw = rng.random()
    if draw < 0.5:
        source, benchmark = "synthetic", rng.choice(SPEC95)
        program_text = ""
    elif draw < 0.7:
        source, benchmark = "kernel", rng.choice(sorted(KERNELS))
        program_text = ""
    else:
        source, benchmark = "program", f"fuzz-program-{seed}"
        program_text = random_program(rng)
    return FuzzScenario(
        seed=seed,
        source=source,
        benchmark=benchmark,
        workload_seed=rng.randrange(2**31),
        instructions=instructions,
        stream_slack=rng.choice((0, 300)),
        config_fields=tuple(sorted(_random_config(rng).items())),
        program_text=program_text,
    )


def _random_config(rng: random.Random) -> dict:
    """A random but safe ProcessorConfig point.

    Ranges keep every architecture of the matrix live-lock free: physical
    register counts stay above the 32 architected registers per class and
    the queues stay large enough that commit always drains dispatch.
    """
    overrides = {
        "fetch_width": rng.choice((2, 4, 8)),
        "decode_width": rng.choice((2, 4, 8)),
        "issue_width": rng.choice((1, 2, 4, 8)),
        "commit_width": rng.choice((2, 4, 8)),
        "instruction_window": rng.choice((16, 32, 64, 128)),
        "rob_size": rng.choice((32, 64, 128)),
        "lsq_size": rng.choice((8, 16, 32)),
        "num_int_physical": rng.choice((48, 64, 96, 128)),
        "num_fp_physical": rng.choice((48, 64, 96, 128)),
        "fetch_buffer_size": rng.choice((4, 8, 16)),
    }
    if rng.random() < 0.15:
        overrides["collect_occupancy"] = True
    return overrides


# ----------------------------------------------------------------------
# random program generation
# ----------------------------------------------------------------------

#: (mnemonic template, kind) — kind selects the operand pools.
_INT_OPS = ("add", "sub", "slt")
_FP_OPS = ("fadd", "fsub", "fmul")


def random_program(rng: random.Random) -> str:
    """Generate a valid, terminating assembly program.

    The program is a sequence of counted loops.  Loop bodies mix integer
    and FP arithmetic, loads/stores against two base pointers, and
    forward conditional skips.  The integer operation set deliberately
    excludes bitwise/shift operations and multiplies: value magnitudes
    can grow without bound across iterations, and the functional
    executor converts load/store base operands to ``int`` — restricting
    address arithmetic to the ``li``/``addi``-maintained base registers
    keeps every conversion finite.
    """
    lines = [
        "    li   r1, 0x2000",
        "    li   r2, 0x4000",
        "    li   r4, 0",
        f"    li   r5, {rng.randint(1, 32)}",
    ]
    label_counter = 0
    for loop_index in range(rng.randint(1, 3)):
        trip = rng.randint(3, 24)
        lines.append(f"    li   r3, {trip}")
        lines.append(f"loop{loop_index}:")
        body_ops = rng.randint(3, 10)
        emitted = 0
        while emitted < body_ops:
            if rng.random() < 0.25 and body_ops - emitted >= 2:
                label = f"skip{label_counter}"
                label_counter += 1
                a, b = rng.choice(_INT_DEST_POOL), rng.choice(
                    _INT_DEST_POOL + _BASE_REGISTERS
                )
                mnemonic = rng.choice(("blt", "bge", "beq", "bne"))
                lines.append(f"    {mnemonic}  {a}, {b}, {label}")
                for _ in range(rng.randint(1, 2)):
                    lines.append(_random_body_op(rng))
                    emitted += 1
                lines.append(f"{label}:")
            else:
                lines.append(_random_body_op(rng))
                emitted += 1
        lines.append("    addi r3, r3, -1")
        lines.append(f"    bne  r3, r4, loop{loop_index}")
    return "\n".join(lines) + "\n"


def _random_body_op(rng: random.Random) -> str:
    draw = rng.random()
    if draw < 0.30:  # integer ALU
        op = rng.choice(_INT_OPS)
        dest = rng.choice(_INT_DEST_POOL)
        a = rng.choice(_INT_DEST_POOL + _BASE_REGISTERS)
        b = rng.choice(_INT_DEST_POOL)
        return f"    {op}  {dest}, {a}, {b}"
    if draw < 0.45:  # addi / li / mov
        dest = rng.choice(_INT_DEST_POOL)
        kind = rng.random()
        if kind < 0.4:
            return f"    addi {dest}, {rng.choice(_INT_DEST_POOL)}, {rng.randint(-16, 16)}"
        if kind < 0.7:
            return f"    li   {dest}, {rng.randint(0, 64)}"
        return f"    mov  {dest}, {rng.choice(_INT_DEST_POOL)}"
    if draw < 0.60:  # FP arithmetic
        op = rng.choice(_FP_OPS)
        dest = rng.choice(_FP_DEST_POOL)
        return (
            f"    {op} {dest}, {rng.choice(_FP_DEST_POOL)}, "
            f"{rng.choice(_FP_DEST_POOL)}"
        )
    if draw < 0.70:  # integer load
        return (
            f"    lw   {rng.choice(_INT_DEST_POOL)}, "
            f"{rng.choice(_BASE_REGISTERS)}, {8 * rng.randrange(32)}"
        )
    if draw < 0.78:  # FP load
        return (
            f"    flw  {rng.choice(_FP_DEST_POOL)}, "
            f"{rng.choice(_BASE_REGISTERS)}, {8 * rng.randrange(32)}"
        )
    if draw < 0.86:  # integer store
        return (
            f"    sw   {rng.choice(_INT_DEST_POOL)}, "
            f"{rng.choice(_BASE_REGISTERS)}, {8 * rng.randrange(32)}"
        )
    if draw < 0.94:  # FP store
        return (
            f"    fsw  {rng.choice(_FP_DEST_POOL)}, "
            f"{rng.choice(_BASE_REGISTERS)}, {8 * rng.randrange(32)}"
        )
    if draw < 0.98:  # FP move
        return (
            f"    fmov {rng.choice(_FP_DEST_POOL)}, {rng.choice(_FP_DEST_POOL)}"
        )
    return "    nop"
