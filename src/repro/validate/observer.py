"""Commit-stream observation.

The differential validation subsystem needs to see *what* the pipeline
committed, independently of *when* it committed it.  A
:class:`CommitObserver` attaches to a
:class:`~repro.pipeline.processor.Processor` (via the
``commit_observer`` constructor argument) and records, for every
committed instruction, a canonical **commit record**; the records feed a
rolling SHA-256 checksum, periodic checkpoints (for cheap divergence
localization) and the committed architectural register state.

The same accumulator is used by the pipeline-independent
:class:`~repro.validate.oracle.ArchitecturalOracle`, so a pipeline run
and the oracle produce byte-comparable summaries.  The observer is
strictly read-only: attaching it must not change a single simulation
statistic (``tests/test_golden_stats.py`` plus
``tests/test_validate_oracle_observer.py`` enforce this).

The simulator is timing-only — dynamic instructions carry no values — so
"architectural state" is *dataflow-symbolic*: each logical register maps
to the sequence number of the youngest committed instruction that wrote
it (or -1 for the architected initial value).  That is exactly the
architectural contract a trace-driven register-file study must preserve:
every architecture must commit the same instructions, in the same order,
leaving every logical register bound to the same producer.
"""

from __future__ import annotations

import hashlib
from typing import Dict, List, Optional, Tuple

from repro.isa.instruction import DynamicInstruction, LogicalRegister

#: Default number of commits between two rolling-checksum checkpoints.
DEFAULT_CHECKPOINT_INTERVAL = 256


def commit_record(instruction: DynamicInstruction) -> str:
    """Canonical one-line description of one committed instruction.

    The record captures everything architecturally visible in a
    trace-driven model: position in the stream, operation class,
    destination and source logical registers, the effective memory
    address and the branch outcome.  Timing (cycles, ports, bypass
    sources) is deliberately absent — two register-file architectures
    may disagree on timing but never on these fields.
    """
    dest = instruction.dest
    branch = ""
    if instruction.is_branch:
        branch = "T" if instruction.branch_taken else "N"
    return "|".join(
        (
            str(instruction.seq),
            instruction.op_class.value,
            "" if dest is None else str(dest),
            ",".join(str(source) for source in instruction.sources),
            "" if instruction.mem_address is None else str(instruction.mem_address),
            branch,
        )
    )


class CommitStreamAccumulator:
    """Rolling summary of a committed instruction sequence.

    Tracks the commit count, a rolling SHA-256 checksum over the
    canonical commit records, checkpoint digests every
    ``checkpoint_interval`` commits and the symbolic architectural
    register state.  ``keep_log`` retains the full record list, which the
    differential runner uses to pinpoint the exact first divergent
    commit; validation scenarios are small, so the memory cost is
    negligible.
    """

    def __init__(
        self,
        checkpoint_interval: int = DEFAULT_CHECKPOINT_INTERVAL,
        keep_log: bool = True,
    ) -> None:
        if checkpoint_interval <= 0:
            raise ValueError("checkpoint_interval must be positive")
        self.checkpoint_interval = checkpoint_interval
        self.count = 0
        self.checkpoints: List[Tuple[int, str]] = []
        self.committed_state: Dict[LogicalRegister, int] = {}
        self.log: Optional[List[str]] = [] if keep_log else None
        self._hash = hashlib.sha256()

    def record(self, instruction: DynamicInstruction) -> None:
        """Fold one committed instruction into the running summary."""
        line = commit_record(instruction)
        self._hash.update(line.encode("utf-8"))
        self._hash.update(b"\n")
        if self.log is not None:
            self.log.append(line)
        if instruction.dest is not None:
            self.committed_state[instruction.dest] = instruction.seq
        self.count += 1
        if self.count % self.checkpoint_interval == 0:
            self.checkpoints.append((self.count, self._hash.hexdigest()[:16]))

    # ------------------------------------------------------------------

    def digest(self) -> str:
        """Hex digest over every record folded in so far."""
        return self._hash.hexdigest()

    def state_snapshot(self) -> Dict[str, int]:
        """The committed architectural state with stringified registers."""
        return {
            str(register): seq
            for register, seq in sorted(
                self.committed_state.items(),
                key=lambda item: (item[0].reg_class.value, item[0].index),
            )
        }

    def snapshot(self) -> dict:
        """JSON-serializable summary used by the differential runner."""
        return {
            "count": self.count,
            "digest": self.digest(),
            "checkpoints": [list(checkpoint) for checkpoint in self.checkpoints],
            "state": self.state_snapshot(),
        }


class CommitObserver:
    """Processor-side commit hook.

    Pass an instance as the ``commit_observer`` argument of
    :class:`~repro.pipeline.processor.Processor`; the commit stage calls
    :meth:`on_commit` once per committed instruction, in commit order.
    """

    def __init__(
        self,
        checkpoint_interval: int = DEFAULT_CHECKPOINT_INTERVAL,
        keep_log: bool = True,
    ) -> None:
        self.accumulator = CommitStreamAccumulator(
            checkpoint_interval=checkpoint_interval, keep_log=keep_log
        )

    def on_commit(self, renamed, cycle: int) -> None:
        """Record one committed instruction (``renamed`` is the
        :class:`~repro.rename.renamer.RenamedInstruction` leaving the ROB)."""
        self.accumulator.record(renamed.instruction)

    def final_digest(self) -> str:
        """Checksum over the full commit stream (surfaced via
        ``SimulationStats.commit_checksum``)."""
        return self.accumulator.digest()

    def snapshot(self) -> dict:
        return self.accumulator.snapshot()
