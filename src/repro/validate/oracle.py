"""The architectural oracle: a pipeline-independent reference model.

The oracle is a trivial in-order executor over a dynamic instruction
stream.  It shares no code with the pipeline model — no renaming, no
issue window, no register-file timing — so a bug anywhere in those
layers cannot also hide in the oracle.  It consumes the first
``max_instructions`` instructions of a stream (exactly the prefix any
correct pipeline run commits), checks the stream invariants the
simulator relies on, and produces the same
:class:`~repro.validate.observer.CommitStreamAccumulator` summary the
pipeline-side observer produces: commit count, rolling commit-order
checksum, checkpoints and the symbolic architectural register state.

Because the timing simulator is trace driven, instruction *values* do
not exist; see :mod:`repro.validate.observer` for why last-writer
sequence numbers are the right notion of architectural state here.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple

from repro.errors import ValidationError
from repro.isa.instruction import DynamicInstruction
from repro.isa.opcodes import OpClass
from repro.validate.observer import (
    DEFAULT_CHECKPOINT_INTERVAL,
    CommitStreamAccumulator,
)


@dataclass
class OracleResult:
    """Everything the oracle derived from one stream prefix."""

    count: int
    digest: str
    checkpoints: List[Tuple[int, str]]
    state: Dict[str, int]
    log: Optional[List[str]]

    def snapshot(self) -> dict:
        """Same shape as ``CommitObserver.snapshot`` for direct comparison."""
        return {
            "count": self.count,
            "digest": self.digest,
            "checkpoints": [list(checkpoint) for checkpoint in self.checkpoints],
            "state": self.state,
        }


class ArchitecturalOracle:
    """In-order functional reference executor."""

    def __init__(
        self,
        checkpoint_interval: int = DEFAULT_CHECKPOINT_INTERVAL,
        keep_log: bool = True,
    ) -> None:
        self.checkpoint_interval = checkpoint_interval
        self.keep_log = keep_log

    def execute(
        self,
        instructions: Iterable[DynamicInstruction],
        max_instructions: int,
    ) -> OracleResult:
        """Execute (in order) up to ``max_instructions`` instructions.

        Raises
        ------
        ValidationError
            If the stream violates an invariant every consumer assumes:
            sequence numbers must be contiguous from 0, branches must be
            flagged consistently, and memory operations must carry an
            effective address.
        """
        if max_instructions <= 0:
            raise ValidationError("max_instructions must be positive")
        accumulator = CommitStreamAccumulator(
            checkpoint_interval=self.checkpoint_interval, keep_log=self.keep_log
        )
        expected_seq = 0
        for instruction in instructions:
            if accumulator.count >= max_instructions:
                break
            self._check(instruction, expected_seq)
            expected_seq += 1
            accumulator.record(instruction)
        return OracleResult(
            count=accumulator.count,
            digest=accumulator.digest(),
            checkpoints=list(accumulator.checkpoints),
            state=accumulator.state_snapshot(),
            log=accumulator.log,
        )

    @staticmethod
    def _check(instruction: DynamicInstruction, expected_seq: int) -> None:
        if instruction.seq != expected_seq:
            raise ValidationError(
                f"stream sequence numbers must be contiguous: expected "
                f"{expected_seq}, got {instruction.seq}"
            )
        op_class = instruction.op_class
        if (op_class is OpClass.BRANCH) != instruction.is_branch:
            raise ValidationError(
                f"seq {instruction.seq}: is_branch={instruction.is_branch} "
                f"inconsistent with op_class {op_class.value}"
            )
        if op_class.is_memory and instruction.mem_address is None:
            raise ValidationError(
                f"seq {instruction.seq}: {op_class.value} without a memory address"
            )


def run_oracle(
    instructions: Iterable[DynamicInstruction],
    max_instructions: int,
    checkpoint_interval: int = DEFAULT_CHECKPOINT_INTERVAL,
    keep_log: bool = True,
) -> OracleResult:
    """Convenience wrapper around :class:`ArchitecturalOracle`."""
    oracle = ArchitecturalOracle(
        checkpoint_interval=checkpoint_interval, keep_log=keep_log
    )
    return oracle.execute(instructions, max_instructions)
