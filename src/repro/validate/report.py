"""Validation outcomes and schema-versioned JSON reports.

Mirrors the shape of :mod:`repro.bench.report`: one ``python -m
repro.validate`` invocation produces a :class:`ValidationReport` holding
one :class:`ScenarioValidation` per fuzzed seed, each with the oracle
summary, one :class:`ArchitectureOutcome` per register-file architecture
and any :class:`Divergence` found.  Every divergence carries a minimized
repro: the seed, the scenario descriptor (config point, program text,
workload seed) and the first divergent commit index.
"""

from __future__ import annotations

import json
import os
from dataclasses import asdict, dataclass, field
from typing import Dict, List, Optional

from repro.errors import ValidationError
from repro.version import __version__

#: Bump when the report layout changes; loading refuses mismatches.
SCHEMA_VERSION = 1


@dataclass
class Divergence:
    """One detected disagreement between an architecture and the oracle."""

    architecture: str
    #: "commit_count", "commit_stream", "architectural_state" or
    #: "simulation_error".
    kind: str
    detail: str
    first_divergent_commit: Optional[int] = None
    expected_record: Optional[str] = None
    observed_record: Optional[str] = None
    #: Command line reproducing the failing scenario.
    repro: str = ""

    def describe(self) -> str:
        where = (
            f" at commit {self.first_divergent_commit}"
            if self.first_divergent_commit is not None
            else ""
        )
        lines = [f"{self.architecture}: {self.kind}{where} — {self.detail}"]
        if self.expected_record is not None:
            lines.append(f"  oracle   : {self.expected_record}")
        if self.observed_record is not None:
            lines.append(f"  observed : {self.observed_record}")
        if self.repro:
            lines.append(f"  repro    : {self.repro}")
        return "\n".join(lines)


@dataclass
class ArchitectureOutcome:
    """Commit-stream summary of one architecture on one scenario."""

    architecture: str
    count: int = 0
    digest: str = ""
    state: Dict[str, int] = field(default_factory=dict)
    checkpoints: List[list] = field(default_factory=list)
    ipc: float = 0.0
    cycles: int = 0
    error: Optional[str] = None


@dataclass
class ScenarioValidation:
    """The differential result of one scenario (one fuzzer seed)."""

    scenario: Dict[str, object]
    oracle: Dict[str, object]
    outcomes: List[ArchitectureOutcome] = field(default_factory=list)
    divergences: List[Divergence] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.divergences

    def to_dict(self) -> dict:
        return {
            "scenario": self.scenario,
            "oracle": self.oracle,
            "outcomes": [asdict(outcome) for outcome in self.outcomes],
            "divergences": [asdict(divergence) for divergence in self.divergences],
            "ok": self.ok,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "ScenarioValidation":
        return cls(
            scenario=dict(payload.get("scenario", {})),
            oracle=dict(payload.get("oracle", {})),
            outcomes=[
                ArchitectureOutcome(**_known_fields(ArchitectureOutcome, entry))
                for entry in payload.get("outcomes", [])
            ],
            divergences=[
                Divergence(**_known_fields(Divergence, entry))
                for entry in payload.get("divergences", [])
            ],
        )


def _known_fields(cls, payload: dict) -> dict:
    known = set(cls.__dataclass_fields__)
    return {key: value for key, value in payload.items() if key in known}


@dataclass
class ValidationReport:
    """One validation run: scenarios, divergences, summary."""

    created: str
    quick: bool
    seeds: List[int]
    architectures: List[str]
    scenarios: List[ScenarioValidation] = field(default_factory=list)
    schema: int = SCHEMA_VERSION

    @property
    def ok(self) -> bool:
        return all(scenario.ok for scenario in self.scenarios)

    @property
    def divergence_count(self) -> int:
        return sum(len(scenario.divergences) for scenario in self.scenarios)

    # ------------------------------------------------------------------

    def to_dict(self) -> dict:
        return {
            "schema": self.schema,
            "version": __version__,
            "created": self.created,
            "quick": self.quick,
            "seeds": list(self.seeds),
            "architectures": list(self.architectures),
            "ok": self.ok,
            "divergence_count": self.divergence_count,
            "scenarios": [scenario.to_dict() for scenario in self.scenarios],
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "ValidationReport":
        if payload.get("schema") != SCHEMA_VERSION:
            raise ValidationError(
                f"unsupported validation report schema {payload.get('schema')!r} "
                f"(expected {SCHEMA_VERSION})"
            )
        return cls(
            created=str(payload.get("created", "")),
            quick=bool(payload.get("quick", False)),
            seeds=[int(seed) for seed in payload.get("seeds", [])],
            architectures=[str(name) for name in payload.get("architectures", [])],
            scenarios=[
                ScenarioValidation.from_dict(entry)
                for entry in payload.get("scenarios", [])
            ],
        )

    def save(self, path: str) -> str:
        directory = os.path.dirname(path)
        if directory:
            os.makedirs(directory, exist_ok=True)
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(self.to_dict(), handle, indent=2, sort_keys=True)
            handle.write("\n")
        return path

    @classmethod
    def load(cls, path: str) -> "ValidationReport":
        try:
            with open(path, "r", encoding="utf-8") as handle:
                payload = json.load(handle)
        except (OSError, ValueError) as exc:
            raise ValidationError(
                f"cannot read validation report {path!r}: {exc}"
            ) from exc
        return cls.from_dict(payload)

    # ------------------------------------------------------------------

    def render(self) -> str:
        lines = [
            f"differential validation: {len(self.scenarios)} scenario(s), "
            f"{len(self.architectures)} architectures + oracle, "
            f"{self.divergence_count} divergence(s)"
        ]
        for scenario in self.scenarios:
            descriptor = scenario.scenario
            committed = scenario.oracle.get("count", "?")
            label = (
                f"seed {descriptor.get('seed', '?')}: "
                f"{descriptor.get('source', '?')}/{descriptor.get('benchmark', '?')} "
                f"({committed} commits)"
            )
            if scenario.ok:
                lines.append(f"  ok   {label}")
            else:
                lines.append(f"  FAIL {label}")
                for divergence in scenario.divergences:
                    lines.extend(
                        "       " + line
                        for line in divergence.describe().splitlines()
                    )
        lines.append(f"verdict: {'OK' if self.ok else 'DIVERGENT'}")
        return "\n".join(lines)
