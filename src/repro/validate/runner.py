"""Orchestration of fuzzed differential validation runs.

One *seed task* = generate the scenario of a seed, build its trace, and
run the full differential matrix on it.  Seeds are independent, so they
fan out across worker processes through the same
:func:`repro.experiments.scheduler.fan_out` primitive the experiment
harness uses; results cross the process boundary as plain dictionaries.
"""

from __future__ import annotations

from dataclasses import dataclass
from datetime import datetime, timezone
from typing import Callable, List, Optional, Sequence

from repro.experiments.scheduler import fan_out
from repro.validate.differential import (
    filter_matrix,
    run_differential,
    validation_matrix,
)
from repro.validate.faults import InjectedFault
from repro.validate.fuzzer import generate_scenario
from repro.validate.observer import DEFAULT_CHECKPOINT_INTERVAL
from repro.validate.report import ScenarioValidation, ValidationReport

#: Progress sink for one-line status messages.
ProgressCallback = Callable[[str], None]


@dataclass(frozen=True)
class SeedTask:
    """Everything a worker process needs to validate one seed."""

    seed: int
    quick: bool = False
    name_filter: Optional[str] = None
    checkpoint_interval: int = DEFAULT_CHECKPOINT_INTERVAL
    fault: Optional[InjectedFault] = None
    use_trace_replay: bool = True

    def repro_command(self) -> str:
        """The command line reproducing this exact scenario."""
        parts = ["python -m repro.validate", f"--seed {self.seed}"]
        if self.quick:
            parts.append("--quick")
        if self.name_filter:
            parts.append(f"--filter {self.name_filter}")
        if self.fault is not None:
            parts.append(
                f"--inject-fault {self.fault.architecture}:{self.fault.commit_index}"
            )
        if not self.use_trace_replay:
            parts.append("--no-trace-replay")
        return " ".join(parts)


def run_seed(task: SeedTask) -> ScenarioValidation:
    """Validate one seed: scenario generation, replay, differential diff."""
    scenario = generate_scenario(task.seed, quick=task.quick)
    matrix = filter_matrix(validation_matrix(), task.name_filter)
    trace = scenario.build_trace()
    return run_differential(
        trace,
        scenario.config(),
        architectures=matrix,
        scenario=scenario.describe(),
        checkpoint_interval=task.checkpoint_interval,
        fault=task.fault,
        repro=task.repro_command(),
        use_trace_replay=task.use_trace_replay,
    )


def _run_seed_remote(task: SeedTask) -> dict:
    """Worker wrapper: ship the result back as a plain dictionary."""
    return run_seed(task).to_dict()


def run_validation(
    seeds: Sequence[int],
    quick: bool = False,
    name_filter: Optional[str] = None,
    jobs: int = 1,
    checkpoint_interval: int = DEFAULT_CHECKPOINT_INTERVAL,
    fault: Optional[InjectedFault] = None,
    progress: Optional[ProgressCallback] = None,
    use_trace_replay: bool = True,
) -> ValidationReport:
    """Validate every seed and assemble a :class:`ValidationReport`.

    Raises
    ------
    ValidationError
        If ``name_filter`` matches no architecture, or ``fault`` names
        an unknown one (checked before any simulation runs).
    """
    full_matrix = validation_matrix()
    matrix = filter_matrix(full_matrix, name_filter)
    if fault is not None and fault.architecture not in matrix:
        # Re-using the differential runner's check would only fire after
        # the first seed simulated; fail fast instead — and distinguish a
        # typo from an architecture the --filter excluded.
        from repro.errors import ValidationError

        if fault.architecture in full_matrix:
            raise ValidationError(
                f"fault targets architecture {fault.architecture!r}, which "
                f"the filter {name_filter!r} excludes (selected: "
                f"{', '.join(matrix)})"
            )
        raise ValidationError(
            f"fault targets unknown architecture {fault.architecture!r} "
            f"(known: {', '.join(full_matrix)})"
        )

    def say(message: str) -> None:
        if progress is not None:
            progress(message)

    tasks = [
        SeedTask(
            seed=seed,
            quick=quick,
            name_filter=name_filter,
            checkpoint_interval=checkpoint_interval,
            fault=fault,
            use_trace_replay=use_trace_replay,
        )
        for seed in seeds
    ]
    say(
        f"validate: {len(tasks)} seed(s) x {len(matrix)} architectures + oracle"
        + (f" on {jobs} workers" if jobs > 1 and len(tasks) > 1 else "")
    )
    done = 0
    converted: dict[int, ScenarioValidation] = {}

    def on_result(index: int, payload) -> None:
        nonlocal done
        done += 1
        result = (
            payload
            if isinstance(payload, ScenarioValidation)
            else ScenarioValidation.from_dict(payload)
        )
        converted[index] = result
        verdict = "ok" if result.ok else "DIVERGENT"
        say(
            f"[{done}/{len(tasks)}] seed {tasks[index].seed}: {verdict} "
            f"({result.scenario.get('source')}/{result.scenario.get('benchmark')}, "
            f"{result.oracle.get('count')} commits)"
        )

    fan_out(
        tasks,
        worker=run_seed,
        jobs=jobs,
        remote_worker=_run_seed_remote,
        on_result=on_result,
    )
    scenarios: List[ScenarioValidation] = [
        converted[index] for index in range(len(tasks))
    ]
    return ValidationReport(
        created=datetime.now(timezone.utc).isoformat(timespec="seconds"),
        quick=quick,
        seeds=[task.seed for task in tasks],
        architectures=list(matrix),
        scenarios=scenarios,
    )
