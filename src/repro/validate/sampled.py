"""Sampled-vs-full accuracy validation.

The sampling engine (:mod:`repro.sampling`) reports IPC as a mean with
a confidence interval instead of an exact number.  That interval is
only useful if it is *honest*: the full-run IPC must actually fall
inside it.  This module turns that contract into a gate — it replays
one deterministic trace through the whole differential architecture
matrix twice, once exactly and once sampled, and fails any
architecture whose full-run IPC lands outside the sampled run's
reported interval.

Because the synthetic workloads are pure functions of their seed, the
whole check is deterministic: a (trace length, sampling spec) pair
that passes once passes always, so the gate is CI-stable by
construction — there is no statistical flake to tolerate.

Run it from the CLI::

    python -m repro.validate --sampled-accuracy
    python -m repro.validate --sampled-accuracy --sample 2500:250:250
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.pipeline.config import ProcessorConfig
from repro.sampling import SamplingSpec, sampled_simulate
from repro.trace import record_trace, replay_simulate
from repro.validate.differential import filter_matrix, validation_matrix
from repro.workloads.profiles import get_profile
from repro.workloads.synthetic import SyntheticWorkload

#: Default deterministic scenario for the accuracy gate.  These values
#: are pinned because the check is exact, not statistical: this spec
#: was verified to satisfy the containment contract on every
#: architecture of the matrix at this trace length.
DEFAULT_BENCHMARK = "gcc"
DEFAULT_INSTRUCTIONS = 24000
DEFAULT_SPEC = SamplingSpec(stride=1500, window=400, warmup=600)


@dataclass
class ArchitectureAccuracy:
    """Sampled-vs-full comparison for one architecture."""

    architecture: str
    full_ipc: float
    sampled_mean: float
    half_width: float
    windows: int
    detailed_instructions: int
    ok: bool

    def to_payload(self) -> dict:
        return {
            "architecture": self.architecture,
            "full_ipc": round(self.full_ipc, 6),
            "sampled_mean": round(self.sampled_mean, 6),
            "ci_half_width": round(self.half_width, 6),
            "ci_low": round(self.sampled_mean - self.half_width, 6),
            "ci_high": round(self.sampled_mean + self.half_width, 6),
            "windows": self.windows,
            "detailed_instructions": self.detailed_instructions,
            "ok": self.ok,
        }


@dataclass
class SampledAccuracyReport:
    """Full matrix sweep of the containment check."""

    benchmark: str
    instructions: int
    spec: SamplingSpec
    results: List[ArchitectureAccuracy] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return bool(self.results) and all(r.ok for r in self.results)

    def to_payload(self) -> dict:
        return {
            "kind": "sampled-accuracy",
            "benchmark": self.benchmark,
            "instructions": self.instructions,
            "sampling": self.spec.to_payload(),
            "ok": self.ok,
            "architectures": [r.to_payload() for r in self.results],
        }

    def render(self) -> str:
        lines = [
            "sampled-vs-full accuracy "
            f"({self.benchmark}, {self.instructions} instructions, "
            f"spec {self.spec.label()}, "
            f"{int(self.spec.confidence * 100)}% confidence)",
            "",
            f"{'architecture':28s} {'full IPC':>9s} "
            f"{'sampled':>9s} {'±hw':>7s} {'windows':>7s}  verdict",
        ]
        for result in self.results:
            verdict = "ok" if result.ok else "OUTSIDE INTERVAL"
            lines.append(
                f"{result.architecture:28s} {result.full_ipc:9.4f} "
                f"{result.sampled_mean:9.4f} {result.half_width:7.4f} "
                f"{result.windows:7d}  {verdict}"
            )
        passed = sum(1 for r in self.results if r.ok)
        lines.append("")
        lines.append(
            f"{'PASS' if self.ok else 'FAIL'}: {passed}/{len(self.results)} "
            "architectures have full-run IPC inside the sampled interval"
        )
        return "\n".join(lines)


def run_sampled_accuracy(
    benchmark: str = DEFAULT_BENCHMARK,
    instructions: int = DEFAULT_INSTRUCTIONS,
    spec: Optional[SamplingSpec] = None,
    name_filter: Optional[str] = None,
    progress: Optional[Callable[[str], None]] = None,
) -> SampledAccuracyReport:
    """Replay the architecture matrix both ways and check containment.

    One decoded trace is recorded from the deterministic synthetic
    ``benchmark`` and shared by every run, so the exact and sampled
    passes of each architecture consume bit-identical instruction
    streams; the only difference is which instructions get detailed
    timing.
    """
    spec = spec if spec is not None else DEFAULT_SPEC
    matrix: Dict[str, object] = filter_matrix(validation_matrix(), name_filter)

    def say(message: str) -> None:
        if progress is not None:
            progress(message)

    config = ProcessorConfig(max_instructions=instructions)
    workload = SyntheticWorkload(get_profile(benchmark))
    say(f"recording {benchmark} trace ({instructions} instructions)...")
    trace = record_trace(
        benchmark,
        workload.instructions(instructions),
        config,
        {
            "kind": "sampled-accuracy",
            "benchmark": benchmark,
            "instructions": instructions,
        },
    )

    report = SampledAccuracyReport(
        benchmark=benchmark, instructions=instructions, spec=spec
    )
    for name, factory in matrix.items():
        say(f"checking {name}...")
        full = replay_simulate(trace, factory, config, benchmark_name=benchmark)
        sampled = sampled_simulate(
            trace, factory, config, spec, benchmark_name=benchmark
        )
        sampling = sampled.sampling or {}
        mean = float(sampling.get("ipc_mean", sampled.ipc))
        half_width = float(sampling.get("ci_half_width", 0.0))
        report.results.append(
            ArchitectureAccuracy(
                architecture=name,
                full_ipc=full.ipc,
                sampled_mean=mean,
                half_width=half_width,
                windows=int(sampling.get("windows", 0)),
                detailed_instructions=int(
                    sampling.get("detailed_instructions", 0)
                ),
                ok=mean - half_width <= full.ipc <= mean + half_width,
            )
        )
    return report
