"""Single source of the package version.

Kept in a dependency-free module so report writers (bench, validate,
experiments, service) and the build backend can read it without
importing the whole package.  Bump on every released change to the
simulation engine or its artifacts: report JSON embeds this value so
every artifact is attributable to the code that produced it.
"""

__version__ = "1.1.0"
