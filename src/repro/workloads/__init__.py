"""Workloads: SPEC95-substitute synthetic benchmarks and ISA kernels.

The paper evaluates on the full SPEC95 suite compiled for Alpha and
simulated for 100M instructions.  Neither the binaries nor an Alpha
tool-chain are available here, so this package provides the substitution
documented in DESIGN.md: per-benchmark *profiles* capturing the workload
properties the register-file study is sensitive to (instruction mix,
dataflow distance, branch behaviour, memory locality), and a seeded
generator that turns a profile into a deterministic dynamic instruction
stream.  Hand-written kernels in the toy ISA are also provided for the
examples and integration tests.
"""

from repro.workloads.profiles import (
    BenchmarkProfile,
    BranchProfile,
    MemoryProfile,
    get_profile,
    all_profiles,
)
from repro.workloads.spec_suites import (
    SPECINT95,
    SPECFP95,
    SPEC95,
    suite_for,
)
from repro.workloads.synthetic import SyntheticWorkload
from repro.workloads.kernels import (
    KERNELS,
    dot_product_program,
    vector_scale_program,
    linked_list_walk_program,
    stencil_program,
    matmul_program,
    hash_lookup_program,
    kernel_workload,
)
from repro.workloads.trace import Trace, materialize

__all__ = [
    "BenchmarkProfile",
    "BranchProfile",
    "MemoryProfile",
    "get_profile",
    "all_profiles",
    "SPECINT95",
    "SPECFP95",
    "SPEC95",
    "suite_for",
    "SyntheticWorkload",
    "KERNELS",
    "dot_product_program",
    "vector_scale_program",
    "linked_list_walk_program",
    "stencil_program",
    "matmul_program",
    "hash_lookup_program",
    "kernel_workload",
    "Trace",
    "materialize",
]
