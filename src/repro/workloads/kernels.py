"""Hand-written kernels in the toy ISA.

These kernels exercise the full pipeline — real dataflow, loops, loads
and stores with genuine addresses — and are used by the examples and the
integration tests.  They complement the statistical SPEC95-substitute
workloads in :mod:`repro.workloads.synthetic`.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterator

from repro.isa.assembler import assemble
from repro.isa.instruction import DynamicInstruction
from repro.isa.program import Program


def dot_product_program(length: int = 64) -> Program:
    """Floating-point dot product of two vectors of ``length`` elements."""
    text = f"""
        li   r1, 0x2000        # base of vector a
        li   r2, 0x4000        # base of vector b
        li   r3, {length}      # loop counter
        li   r4, 0             # zero
        fsub f1, f1, f1        # accumulator = 0
    loop:
        flw  f2, r1, 0
        flw  f3, r2, 0
        fmul f4, f2, f3
        fadd f1, f1, f4
        addi r1, r1, 8
        addi r2, r2, 8
        addi r3, r3, -1
        bne  r3, r4, loop
        fsw  f1, r1, 0
    """
    return assemble(text)


def vector_scale_program(length: int = 64) -> Program:
    """Scale a vector by a constant: ``a[i] = a[i] * k`` (streaming FP)."""
    text = f"""
        li   r1, 0x2000
        li   r3, {length}
        li   r4, 0
        li   r5, 3
        fsub f5, f5, f5
    loop:
        flw  f2, r1, 0
        fmul f3, f2, f2
        fadd f3, f3, f5
        fsw  f3, r1, 0
        addi r1, r1, 8
        addi r3, r3, -1
        bne  r3, r4, loop
    """
    return assemble(text)


def linked_list_walk_program(nodes: int = 64) -> Program:
    """Pointer-chasing loop typical of integer codes (li, vortex).

    The list is laid out so that node ``i`` lives at ``0x8000 + 32 * i``
    and its "next" pointer is loaded from memory (value 0 terminates, but
    the loop is bounded by a counter so the functional run always ends).
    """
    text = f"""
        li   r1, 0x8000        # current node pointer
        li   r3, {nodes}       # safety counter
        li   r4, 0
        li   r6, 0             # sum of payloads
    loop:
        lw   r2, r1, 8         # payload
        add  r6, r6, r2
        lw   r5, r1, 0         # next pointer (0 in a fresh memory)
        addi r1, r1, 32        # advance to the next node layout slot
        addi r3, r3, -1
        bne  r3, r4, loop
        sw   r6, r1, 0
    """
    return assemble(text)


def stencil_program(width: int = 32, rows: int = 8) -> Program:
    """1-D three-point stencil applied ``rows`` times (hydro2d/swim-like)."""
    text = f"""
        li   r7, {rows}
        li   r4, 0
    outer:
        li   r1, 0x2000
        li   r3, {width}
    inner:
        flw  f1, r1, 0
        flw  f2, r1, 8
        flw  f3, r1, 16
        fadd f4, f1, f2
        fadd f5, f4, f3
        fmul f6, f5, f5
        fsw  f6, r1, 8
        addi r1, r1, 8
        addi r3, r3, -1
        bne  r3, r4, inner
        addi r7, r7, -1
        bne  r7, r4, outer
    """
    return assemble(text)


def matmul_program(size: int = 8) -> Program:
    """Naive ``size``×``size`` matrix multiply (FP compute dense)."""
    text = f"""
        li   r10, {size}
        li   r4, 0
        li   r1, 0             # i
    iloop:
        li   r2, 0             # j
    jloop:
        fsub f1, f1, f1        # acc = 0
        li   r3, 0             # k
        li   r5, 0x2000        # A base
        li   r6, 0x6000        # B base
    kloop:
        flw  f2, r5, 0
        flw  f3, r6, 0
        fmul f4, f2, f3
        fadd f1, f1, f4
        addi r5, r5, 8
        addi r6, r6, 64
        addi r3, r3, 1
        blt  r3, r10, kloop
        fsw  f1, r5, 0
        addi r2, r2, 1
        blt  r2, r10, jloop
        addi r1, r1, 1
        blt  r1, r10, iloop
    """
    return assemble(text)


def hash_lookup_program(lookups: int = 64) -> Program:
    """Hash-table probing loop with data-dependent branches (perl/gcc-like)."""
    text = f"""
        li   r1, 0xA000        # table base
        li   r3, {lookups}
        li   r4, 0
        li   r6, 17            # key
        li   r9, 0             # hit counter
    loop:
        mul  r7, r6, r6
        and  r7, r7, r3
        sll  r8, r7, r6
        xor  r6, r6, r8
        and  r5, r6, r3
        sll  r5, r5, r4
        add  r5, r5, r1
        lw   r2, r5, 0
        beq  r2, r6, hit
        addi r9, r9, 0
        jmp  next
    hit:
        addi r9, r9, 1
    next:
        addi r3, r3, -1
        bne  r3, r4, loop
        sw   r9, r1, 0
    """
    return assemble(text)


#: Mapping from kernel name to program factory (default parameters).
KERNELS: Dict[str, Callable[[], Program]] = {
    "dot_product": dot_product_program,
    "vector_scale": vector_scale_program,
    "linked_list_walk": linked_list_walk_program,
    "stencil": stencil_program,
    "matmul": matmul_program,
    "hash_lookup": hash_lookup_program,
}


def kernel_workload(name: str, max_instructions: int = 20_000) -> Iterator[DynamicInstruction]:
    """Return the dynamic stream of the named kernel.

    Raises
    ------
    KeyError
        If the kernel name is unknown.
    """
    program = KERNELS[name]()
    return program.run(max_instructions=max_instructions)
