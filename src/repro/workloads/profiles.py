"""Per-benchmark workload profiles standing in for SPEC95.

Each profile describes the statistical properties of one benchmark that
the register-file experiments are sensitive to:

* the instruction mix (how many FP ops, loads, stores, branches...),
* how quickly produced values are consumed (dependency distance), which
  controls how often operands are satisfied by the bypass network versus
  the register file — the core quantity behind the caching policies,
* how many consumers each value has (most register values are read at
  most once; the paper measures 88% for SpecInt95 and 85% for SpecFP95),
* branch density and predictability (integer codes mispredict much more,
  which is why they are more sensitive to register-file latency),
* memory working-set size and access regularity (controls D-cache misses).

The numbers are drawn from the well-known published characteristics of
SPEC95 (instruction mixes, misprediction rates, cache behaviour); they do
not need to be exact — the experiments compare register-file
architectures on the *same* workloads, so only the realism of the ranges
matters.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import WorkloadError
from repro.isa.opcodes import OpClass


@dataclass(frozen=True)
class BranchProfile:
    """Branch behaviour of a benchmark.

    Attributes
    ----------
    num_static_branches:
        Size of the static branch pool; dynamic branches are drawn from it
        (a small pool with strong bias is easy for gshare, a large pool of
        data-dependent branches is hard).
    loop_fraction:
        Fraction of dynamic branches that are loop back-edges (taken
        ``loop_trip_count - 1`` times out of ``loop_trip_count``).
    loop_trip_count:
        Average trip count of loop branches.
    data_dependent_bias:
        Taken-probability of the remaining, data-dependent branches.  A
        bias close to 0.5 is nearly unpredictable; a strong bias is easy.
    correlated_fraction:
        Fraction of data-dependent branches whose outcome follows a short
        repeating pattern (gshare captures those via global history).
    """

    num_static_branches: int = 64
    loop_fraction: float = 0.6
    loop_trip_count: int = 16
    data_dependent_bias: float = 0.7
    correlated_fraction: float = 0.4


@dataclass(frozen=True)
class MemoryProfile:
    """Memory behaviour of a benchmark.

    Attributes
    ----------
    working_set_bytes:
        Size of the data footprint addressed by loads and stores.
    streaming_fraction:
        Fraction of memory references that follow sequential (unit-stride)
        streams; the rest are scattered accesses.
    num_streams:
        Number of concurrent sequential streams.
    stride_bytes:
        Stride of the sequential streams.
    hot_fraction:
        Fraction of the scattered (non-streaming) accesses that fall into
        a small hot region (stack, frequently used heap objects); the rest
        are spread over the full working set.  This is what gives the
        benchmark its data-cache hit rate.
    hot_region_bytes:
        Size of the hot region.
    """

    working_set_bytes: int = 256 * 1024
    streaming_fraction: float = 0.6
    num_streams: int = 4
    stride_bytes: int = 8
    hot_fraction: float = 0.9
    hot_region_bytes: int = 8 * 1024


@dataclass(frozen=True)
class BenchmarkProfile:
    """Full statistical description of one synthetic benchmark."""

    name: str
    suite: str  # "int" or "fp"
    instruction_mix: dict[OpClass, float] = field(default_factory=dict)
    #: Geometric-distribution parameter for the distance (in dynamic
    #: instructions) between a value's producer and each consumer.  Larger
    #: values mean consumers appear sooner (more bypassing).
    dependency_locality: float = 0.25
    #: Probability that a produced value is read exactly once, twice, or
    #: never (must sum to <= 1; the remainder is 3+ reads).
    read_once_fraction: float = 0.70
    read_twice_fraction: float = 0.10
    never_read_fraction: float = 0.18
    #: Fraction of source operands that reference "old" values (produced
    #: far in the past, e.g. loop-invariant or global values).
    long_range_fraction: float = 0.08
    #: Fraction of instructions that chain on two in-flight values at once
    #: (a*b+c style); the rest chain on at most one recently produced
    #: value.  Keeping this small keeps the number of simultaneously live
    #: and needed registers at the level the paper measures (Figure 3).
    two_chained_fraction: float = 0.12
    branches: BranchProfile = field(default_factory=BranchProfile)
    memory: MemoryProfile = field(default_factory=MemoryProfile)
    #: Static code footprint in bytes (determines I-cache behaviour).
    code_footprint_bytes: int = 32 * 1024
    #: Default RNG seed so every run of a benchmark is reproducible.
    seed: int = 0

    def __post_init__(self) -> None:
        if self.suite not in ("int", "fp"):
            raise WorkloadError(f"suite must be 'int' or 'fp', got {self.suite!r}")
        total = sum(self.instruction_mix.values())
        if not 0.99 <= total <= 1.01:
            raise WorkloadError(
                f"instruction mix of {self.name} sums to {total:.3f}, expected 1.0"
            )
        reads = self.read_once_fraction + self.read_twice_fraction + self.never_read_fraction
        if reads > 1.0 + 1e-9:
            raise WorkloadError(
                f"read-count fractions of {self.name} sum to {reads:.3f} > 1"
            )
        if not 0.0 < self.dependency_locality <= 1.0:
            raise WorkloadError("dependency_locality must be in (0, 1]")

    @property
    def is_fp(self) -> bool:
        return self.suite == "fp"


def _mix(**kwargs: float) -> dict[OpClass, float]:
    """Build an instruction-mix dict from keyword fractions.

    Keys are lower-case OpClass value names (``int_alu``, ``load``...).
    """
    mapping = {cls.value: cls for cls in OpClass}
    mix = {}
    for key, fraction in kwargs.items():
        if key not in mapping:
            raise WorkloadError(f"unknown op class {key!r}")
        mix[mapping[key]] = fraction
    return mix


def _int_profile(
    name: str,
    seed: int,
    *,
    branch_fraction: float = 0.16,
    load_fraction: float = 0.24,
    store_fraction: float = 0.10,
    mul_fraction: float = 0.01,
    div_fraction: float = 0.002,
    dependency_locality: float = 0.30,
    branches: BranchProfile | None = None,
    memory: MemoryProfile | None = None,
    read_once_fraction: float = 0.72,
    never_read_fraction: float = 0.16,
    long_range_fraction: float = 0.08,
    two_chained_fraction: float = 0.22,
    code_footprint_bytes: int = 24 * 1024,
) -> BenchmarkProfile:
    alu = 1.0 - branch_fraction - load_fraction - store_fraction - mul_fraction - div_fraction
    return BenchmarkProfile(
        name=name,
        suite="int",
        instruction_mix=_mix(
            int_alu=alu,
            int_mul=mul_fraction,
            int_div=div_fraction,
            load=load_fraction,
            store=store_fraction,
            branch=branch_fraction,
        ),
        dependency_locality=dependency_locality,
        read_once_fraction=read_once_fraction,
        read_twice_fraction=0.10,
        never_read_fraction=never_read_fraction,
        long_range_fraction=long_range_fraction,
        two_chained_fraction=two_chained_fraction,
        branches=branches or BranchProfile(),
        memory=memory or MemoryProfile(),
        code_footprint_bytes=code_footprint_bytes,
        seed=seed,
    )


def _fp_profile(
    name: str,
    seed: int,
    *,
    branch_fraction: float = 0.06,
    load_fraction: float = 0.28,
    store_fraction: float = 0.10,
    fp_alu_fraction: float = 0.22,
    fp_mul_fraction: float = 0.16,
    fp_div_fraction: float = 0.01,
    int_mul_fraction: float = 0.005,
    dependency_locality: float = 0.20,
    branches: BranchProfile | None = None,
    memory: MemoryProfile | None = None,
    read_once_fraction: float = 0.70,
    never_read_fraction: float = 0.15,
    long_range_fraction: float = 0.10,
    two_chained_fraction: float = 0.05,
    code_footprint_bytes: int = 16 * 1024,
) -> BenchmarkProfile:
    int_alu = (
        1.0
        - branch_fraction
        - load_fraction
        - store_fraction
        - fp_alu_fraction
        - fp_mul_fraction
        - fp_div_fraction
        - int_mul_fraction
    )
    return BenchmarkProfile(
        name=name,
        suite="fp",
        instruction_mix=_mix(
            int_alu=int_alu,
            int_mul=int_mul_fraction,
            fp_alu=fp_alu_fraction,
            fp_mul=fp_mul_fraction,
            fp_div=fp_div_fraction,
            load=load_fraction,
            store=store_fraction,
            branch=branch_fraction,
        ),
        dependency_locality=dependency_locality,
        read_once_fraction=read_once_fraction,
        read_twice_fraction=0.12,
        never_read_fraction=never_read_fraction,
        long_range_fraction=long_range_fraction,
        two_chained_fraction=two_chained_fraction,
        branches=branches
        or BranchProfile(
            loop_fraction=0.85,
            loop_trip_count=64,
            data_dependent_bias=0.85,
            correlated_fraction=0.6,
            num_static_branches=24,
        ),
        memory=memory or MemoryProfile(working_set_bytes=1024 * 1024, streaming_fraction=0.85),
        code_footprint_bytes=code_footprint_bytes,
        seed=seed,
    )


# ----------------------------------------------------------------------
# SpecInt95 benchmark profiles
# ----------------------------------------------------------------------

_SPECINT_PROFILES: dict[str, BenchmarkProfile] = {
    "compress": _int_profile(
        "compress",
        seed=101,
        branch_fraction=0.14,
        load_fraction=0.22,
        store_fraction=0.12,
        dependency_locality=0.34,
        branches=BranchProfile(
            num_static_branches=32,
            loop_fraction=0.55,
            loop_trip_count=24,
            data_dependent_bias=0.86,
            correlated_fraction=0.40,
        ),
        memory=MemoryProfile(working_set_bytes=400 * 1024, streaming_fraction=0.45,
                             hot_fraction=0.88),
        code_footprint_bytes=24 * 1024,
    ),
    "gcc": _int_profile(
        "gcc",
        seed=102,
        branch_fraction=0.19,
        load_fraction=0.26,
        store_fraction=0.11,
        dependency_locality=0.32,
        branches=BranchProfile(
            num_static_branches=512,
            loop_fraction=0.35,
            loop_trip_count=8,
            data_dependent_bias=0.88,
            correlated_fraction=0.40,
        ),
        memory=MemoryProfile(working_set_bytes=768 * 1024, streaming_fraction=0.30,
                             hot_fraction=0.93),
        code_footprint_bytes=64 * 1024,
    ),
    "go": _int_profile(
        "go",
        seed=103,
        branch_fraction=0.17,
        load_fraction=0.25,
        store_fraction=0.08,
        dependency_locality=0.30,
        branches=BranchProfile(
            num_static_branches=384,
            loop_fraction=0.30,
            loop_trip_count=6,
            data_dependent_bias=0.80,
            correlated_fraction=0.20,
        ),
        memory=MemoryProfile(working_set_bytes=256 * 1024, streaming_fraction=0.30,
                             hot_fraction=0.96),
        code_footprint_bytes=48 * 1024,
    ),
    "ijpeg": _int_profile(
        "ijpeg",
        seed=104,
        branch_fraction=0.10,
        load_fraction=0.22,
        store_fraction=0.09,
        mul_fraction=0.04,
        dependency_locality=0.24,
        branches=BranchProfile(
            num_static_branches=48,
            loop_fraction=0.80,
            loop_trip_count=32,
            data_dependent_bias=0.88,
            correlated_fraction=0.60,
        ),
        memory=MemoryProfile(working_set_bytes=256 * 1024, streaming_fraction=0.75,
                             hot_fraction=0.96),
    ),
    "li": _int_profile(
        "li",
        seed=105,
        branch_fraction=0.18,
        load_fraction=0.28,
        store_fraction=0.12,
        dependency_locality=0.33,
        branches=BranchProfile(
            num_static_branches=128,
            loop_fraction=0.45,
            loop_trip_count=10,
            data_dependent_bias=0.92,
            correlated_fraction=0.45,
        ),
        memory=MemoryProfile(working_set_bytes=96 * 1024, streaming_fraction=0.35,
                             hot_fraction=0.97),
    ),
    "m88ksim": _int_profile(
        "m88ksim",
        seed=106,
        branch_fraction=0.16,
        load_fraction=0.22,
        store_fraction=0.08,
        dependency_locality=0.30,
        branches=BranchProfile(
            num_static_branches=96,
            loop_fraction=0.60,
            loop_trip_count=20,
            data_dependent_bias=0.93,
            correlated_fraction=0.55,
        ),
        memory=MemoryProfile(working_set_bytes=64 * 1024, streaming_fraction=0.50,
                             hot_fraction=0.97),
    ),
    "perl": _int_profile(
        "perl",
        seed=107,
        branch_fraction=0.18,
        load_fraction=0.27,
        store_fraction=0.13,
        dependency_locality=0.31,
        branches=BranchProfile(
            num_static_branches=256,
            loop_fraction=0.40,
            loop_trip_count=9,
            data_dependent_bias=0.90,
            correlated_fraction=0.40,
        ),
        memory=MemoryProfile(working_set_bytes=320 * 1024, streaming_fraction=0.35,
                             hot_fraction=0.94),
        code_footprint_bytes=56 * 1024,
    ),
    "vortex": _int_profile(
        "vortex",
        seed=108,
        branch_fraction=0.15,
        load_fraction=0.30,
        store_fraction=0.14,
        dependency_locality=0.28,
        branches=BranchProfile(
            num_static_branches=256,
            loop_fraction=0.50,
            loop_trip_count=12,
            data_dependent_bias=0.95,
            correlated_fraction=0.55,
        ),
        memory=MemoryProfile(working_set_bytes=1024 * 1024, streaming_fraction=0.35,
                             hot_fraction=0.92),
        code_footprint_bytes=64 * 1024,
    ),
}


# ----------------------------------------------------------------------
# SpecFP95 benchmark profiles
# ----------------------------------------------------------------------

_SPECFP_PROFILES: dict[str, BenchmarkProfile] = {
    "applu": _fp_profile(
        "applu",
        seed=201,
        branch_fraction=0.05,
        fp_alu_fraction=0.24,
        fp_mul_fraction=0.18,
        fp_div_fraction=0.015,
        dependency_locality=0.20,
        memory=MemoryProfile(working_set_bytes=2 * 1024 * 1024, streaming_fraction=0.80),
    ),
    "apsi": _fp_profile(
        "apsi",
        seed=202,
        branch_fraction=0.08,
        fp_alu_fraction=0.22,
        fp_mul_fraction=0.14,
        dependency_locality=0.24,
        memory=MemoryProfile(working_set_bytes=1024 * 1024, streaming_fraction=0.65),
    ),
    "fpppp": _fp_profile(
        "fpppp",
        seed=203,
        branch_fraction=0.02,
        load_fraction=0.30,
        store_fraction=0.12,
        fp_alu_fraction=0.26,
        fp_mul_fraction=0.22,
        dependency_locality=0.12,
        long_range_fraction=0.18,
        read_once_fraction=0.62,
        branches=BranchProfile(
            num_static_branches=8,
            loop_fraction=0.90,
            loop_trip_count=128,
            data_dependent_bias=0.92,
            correlated_fraction=0.80,
        ),
        memory=MemoryProfile(working_set_bytes=320 * 1024, streaming_fraction=0.55),
        code_footprint_bytes=64 * 1024,
    ),
    "hydro2d": _fp_profile(
        "hydro2d",
        seed=204,
        branch_fraction=0.07,
        fp_alu_fraction=0.23,
        fp_mul_fraction=0.15,
        fp_div_fraction=0.02,
        dependency_locality=0.22,
        memory=MemoryProfile(working_set_bytes=1536 * 1024, streaming_fraction=0.80),
    ),
    "mgrid": _fp_profile(
        "mgrid",
        seed=205,
        branch_fraction=0.03,
        load_fraction=0.34,
        store_fraction=0.06,
        fp_alu_fraction=0.28,
        fp_mul_fraction=0.20,
        dependency_locality=0.14,
        long_range_fraction=0.16,
        memory=MemoryProfile(working_set_bytes=4 * 1024 * 1024, streaming_fraction=0.90),
    ),
    "su2cor": _fp_profile(
        "su2cor",
        seed=206,
        branch_fraction=0.06,
        fp_alu_fraction=0.22,
        fp_mul_fraction=0.18,
        dependency_locality=0.20,
        memory=MemoryProfile(working_set_bytes=2 * 1024 * 1024, streaming_fraction=0.70),
    ),
    "swim": _fp_profile(
        "swim",
        seed=207,
        branch_fraction=0.02,
        load_fraction=0.32,
        store_fraction=0.12,
        fp_alu_fraction=0.26,
        fp_mul_fraction=0.18,
        dependency_locality=0.18,
        memory=MemoryProfile(working_set_bytes=8 * 1024 * 1024, streaming_fraction=0.95),
    ),
    "tomcatv": _fp_profile(
        "tomcatv",
        seed=208,
        branch_fraction=0.03,
        load_fraction=0.30,
        store_fraction=0.10,
        fp_alu_fraction=0.26,
        fp_mul_fraction=0.20,
        fp_div_fraction=0.015,
        dependency_locality=0.18,
        memory=MemoryProfile(working_set_bytes=4 * 1024 * 1024, streaming_fraction=0.90),
    ),
    "turb3d": _fp_profile(
        "turb3d",
        seed=209,
        branch_fraction=0.06,
        fp_alu_fraction=0.20,
        fp_mul_fraction=0.18,
        dependency_locality=0.22,
        memory=MemoryProfile(working_set_bytes=1024 * 1024, streaming_fraction=0.75),
    ),
    "wave5": _fp_profile(
        "wave5",
        seed=210,
        branch_fraction=0.05,
        load_fraction=0.30,
        store_fraction=0.12,
        fp_alu_fraction=0.22,
        fp_mul_fraction=0.16,
        dependency_locality=0.16,
        long_range_fraction=0.14,
        memory=MemoryProfile(working_set_bytes=3 * 1024 * 1024, streaming_fraction=0.80),
    ),
}


_ALL_PROFILES: dict[str, BenchmarkProfile] = {**_SPECINT_PROFILES, **_SPECFP_PROFILES}


def get_profile(name: str) -> BenchmarkProfile:
    """Return the profile of a SPEC95 benchmark by name.

    Raises
    ------
    WorkloadError
        If ``name`` is not one of the 18 SPEC95 benchmarks.
    """
    try:
        return _ALL_PROFILES[name]
    except KeyError as exc:
        raise WorkloadError(
            f"unknown benchmark {name!r}; expected one of {sorted(_ALL_PROFILES)}"
        ) from exc


def all_profiles() -> dict[str, BenchmarkProfile]:
    """Return a copy of the full name → profile mapping (18 benchmarks)."""
    return dict(_ALL_PROFILES)
