"""SPEC95 suite definitions used throughout the experiments.

The paper reports per-benchmark results for the 8 SpecInt95 and the 10
SpecFP95 programs, plus harmonic means per suite.  These tuples fix the
ordering used in every figure so our tables line up with the paper's.
"""

from __future__ import annotations

from repro.errors import WorkloadError

#: SpecInt95 benchmarks in the order the paper plots them.
SPECINT95: tuple[str, ...] = (
    "compress",
    "gcc",
    "go",
    "ijpeg",
    "li",
    "m88ksim",
    "perl",
    "vortex",
)

#: SpecFP95 benchmarks in the order the paper plots them.
SPECFP95: tuple[str, ...] = (
    "applu",
    "apsi",
    "fpppp",
    "hydro2d",
    "mgrid",
    "su2cor",
    "swim",
    "tomcatv",
    "turb3d",
    "wave5",
)

#: The complete SPEC95 suite (18 programs).
SPEC95: tuple[str, ...] = SPECINT95 + SPECFP95


def suite_for(benchmark: str) -> str:
    """Return ``"int"`` or ``"fp"`` for a benchmark name."""
    if benchmark in SPECINT95:
        return "int"
    if benchmark in SPECFP95:
        return "fp"
    raise WorkloadError(f"unknown benchmark {benchmark!r}")


def suite_members(suite: str) -> tuple[str, ...]:
    """Return the benchmark names belonging to ``suite`` ("int" or "fp")."""
    if suite == "int":
        return SPECINT95
    if suite == "fp":
        return SPECFP95
    raise WorkloadError(f"unknown suite {suite!r}; expected 'int' or 'fp'")
