"""Synthetic dynamic-instruction-stream generator.

This module turns a :class:`~repro.workloads.profiles.BenchmarkProfile`
into a deterministic stream of
:class:`~repro.isa.instruction.DynamicInstruction` objects with

* the profile's instruction mix,
* controlled producer→consumer distances (so the fraction of operands
  satisfied by the bypass network is realistic),
* controlled value read counts (never read / read once / read twice /
  read many), matching the paper's observation that most register values
  are read at most once,
* a pool of static branches with loop-like and data-dependent behaviour
  (so a real gshare predictor achieves realistic accuracy), and
* memory addresses mixing sequential streams and random accesses within a
  working set (so the data cache behaves realistically).

The stream is produced lazily and is fully reproducible from
``(profile, seed)``.
"""

from __future__ import annotations

import heapq
import itertools
import random
from bisect import bisect
from dataclasses import dataclass, field
from typing import Iterator, Optional

from repro.errors import WorkloadError
from repro.isa.instruction import (
    DynamicInstruction,
    LogicalRegister,
    RegisterClass,
)
from repro.isa.opcodes import DEFAULT_LATENCIES, OpClass
from repro.workloads.profiles import BenchmarkProfile

#: Registers per class reserved for long-lived values (base pointers,
#: loop-invariant values).  They are written rarely and read often.
_NUM_LONG_LIVED = 4
#: Registers per class used as rotating destinations for ordinary values.
_NUM_ROTATING = 24


@dataclass
class _StaticBranch:
    """State of one static branch site in the synthetic program."""

    pc: int
    target: int
    is_loop: bool
    trip_count: int = 0
    bias: float = 0.5
    pattern: tuple[bool, ...] = ()
    _position: int = 0

    def next_outcome(self, rng: random.Random) -> bool:
        if self.is_loop:
            # Taken (back edge) trip_count - 1 times, then falls through.
            self._position += 1
            if self._position >= self.trip_count:
                self._position = 0
                return False
            return True
        if self.pattern:
            outcome = self.pattern[self._position % len(self.pattern)]
            self._position += 1
            return outcome
        return rng.random() < self.bias


class _BranchSequencer:
    """Generates a realistic dynamic branch sequence from a static pool.

    Real programs execute branches in coherent episodes: a loop's back
    edge repeats (taken) until the trip count is exhausted, interleaved
    with data-dependent branches from the loop body.  Modelling episodes
    (instead of drawing a random static branch every time) is what lets a
    real gshare predictor reach realistic accuracies on the synthetic
    streams: integer-code profiles land around 90–95% and FP profiles
    above 97%, as in the published SPEC95 characterisations.
    """

    def __init__(self, branches: list[_StaticBranch], loop_fraction: float) -> None:
        self._loops = [b for b in branches if b.is_loop]
        self._others = [b for b in branches if not b.is_loop]
        self._loop_fraction = loop_fraction if self._loops else 0.0
        self._current_loop: _StaticBranch | None = None

    def next_branch(self, rng: random.Random) -> tuple[_StaticBranch, bool]:
        """Return the next dynamic branch (static site, outcome)."""
        use_loop = self._loops and (
            not self._others or rng.random() < self._loop_fraction
        )
        if use_loop:
            if self._current_loop is None:
                self._current_loop = rng.choice(self._loops)
            branch = self._current_loop
            taken = branch.next_outcome(rng)
            if not taken:
                # The loop exited; the next back edge belongs to a new loop.
                self._current_loop = rng.choice(self._loops)
            return branch, taken
        branch = rng.choice(self._others) if self._others else rng.choice(self._loops)
        return branch, branch.next_outcome(rng)


class _MemorySequencer:
    """Generates load/store addresses with realistic locality.

    A configurable fraction of references walk sequential streams; the
    rest are scattered, mostly within a small hot region (stack and hot
    heap objects) and occasionally across the full working set.
    """

    _BASE = 0x100000

    def __init__(self, profile: BenchmarkProfile, rng: random.Random) -> None:
        self._memory = profile.memory
        self._streams = [
            self._BASE + rng.randrange(self._memory.working_set_bytes)
            for _ in range(self._memory.num_streams)
        ]

    def next_address(self, rng: random.Random) -> int:
        memory = self._memory
        if self._streams and rng.random() < memory.streaming_fraction:
            index = rng.randrange(len(self._streams))
            address = self._streams[index]
            self._streams[index] = self._BASE + (
                address - self._BASE + memory.stride_bytes
            ) % memory.working_set_bytes
            return address
        if rng.random() < memory.hot_fraction:
            return self._BASE + (rng.randrange(memory.hot_region_bytes) & ~0x7)
        return self._BASE + (rng.randrange(memory.working_set_bytes) & ~0x7)


@dataclass(slots=True)
class _PendingRead:
    """A planned future read of a produced value."""

    due_seq: int
    producer_seq: int
    register: LogicalRegister

    def __lt__(self, other: "_PendingRead") -> bool:
        return self.due_seq < other.due_seq


@dataclass
class _GeneratorState:
    """Mutable bookkeeping for one generation pass."""

    last_writer: dict[LogicalRegister, int] = field(default_factory=dict)
    pending_reads: list[_PendingRead] = field(default_factory=list)
    #: Registers whose planned reads have not all been generated yet;
    #: maps register -> number of outstanding planned reads.
    protected: dict[LogicalRegister, int] = field(default_factory=dict)


class SyntheticWorkload:
    """Generates the dynamic instruction stream of one synthetic benchmark.

    Parameters
    ----------
    profile:
        The benchmark profile to realize.
    seed:
        Optional seed overriding the profile's default seed; two workloads
        constructed with the same (profile, seed) produce identical
        streams.
    """

    def __init__(self, profile: BenchmarkProfile, seed: Optional[int] = None) -> None:
        self.profile = profile
        self.seed = profile.seed if seed is None else seed
        self._op_classes, self._op_weights = self._build_mix(profile)
        # ``random.choices`` rebuilds the cumulative weights on every call
        # unless they are passed in; precompute them once.  The RNG draws
        # exactly one number either way, so the streams are unchanged.
        self._op_cum_weights = list(itertools.accumulate(self._op_weights))

    @property
    def name(self) -> str:
        return self.profile.name

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------

    def instructions(self, count: int) -> Iterator[DynamicInstruction]:
        """Yield ``count`` dynamic instructions.

        The stream restarts from the beginning on every call, so repeated
        calls with the same count yield identical streams.
        """
        if count <= 0:
            raise WorkloadError("instruction count must be positive")
        rng = random.Random(self.seed)
        branch_sequencer = _BranchSequencer(
            self._build_static_branches(rng), self.profile.branches.loop_fraction
        )
        memory_sequencer = _MemorySequencer(self.profile, rng)
        state = _GeneratorState()
        rotating_int = self._register_pool(RegisterClass.INT)
        rotating_fp = self._register_pool(RegisterClass.FP)
        long_lived_int = self._long_lived_pool(RegisterClass.INT)
        long_lived_fp = self._long_lived_pool(RegisterClass.FP)
        # Long-lived registers start "written" so early readers have a producer.
        for reg in long_lived_int + long_lived_fp:
            state.last_writer[reg] = -1

        pc = 0x1000
        code_limit = 0x1000 + self.profile.code_footprint_bytes
        rotate_index = {RegisterClass.INT: 0, RegisterClass.FP: 0}

        op_classes = self._op_classes
        op_cum_weights = self._op_cum_weights
        op_total = op_cum_weights[-1]
        op_hi = len(op_classes) - 1
        rng_random = rng.random
        latencies = DEFAULT_LATENCIES
        for seq in range(count):
            # Inlined ``rng.choices(op_classes, cum_weights=..., k=1)[0]``:
            # one uniform draw and a bisect, identical RNG consumption.
            op_class = op_classes[bisect(op_cum_weights, rng_random() * op_total,
                                         0, op_hi)]
            reg_class = RegisterClass.FP if op_class.is_fp else RegisterClass.INT
            if op_class is OpClass.LOAD or op_class is OpClass.STORE:
                # Loads/stores of FP benchmarks mostly move FP data.
                if self.profile.is_fp and rng.random() < 0.8:
                    reg_class = RegisterClass.FP
                else:
                    reg_class = RegisterClass.INT

            sources = self._pick_sources(seq, op_class, reg_class, state, rng,
                                         long_lived_int, long_lived_fp)
            dest = None
            if op_class.writes_register:
                dest = self._pick_destination(
                    seq, reg_class, state, rng, rotating_int, rotating_fp,
                    long_lived_int, long_lived_fp, rotate_index,
                )

            is_branch = op_class is OpClass.BRANCH
            branch_taken = False
            branch_target = 0
            mem_address = None
            this_pc = pc

            if is_branch:
                branch, branch_taken = branch_sequencer.next_branch(rng)
                this_pc = branch.pc
                branch_target = branch.target
                pc = branch.target if branch_taken else branch.pc + 4
            else:
                pc += 4
                if pc >= code_limit:
                    pc = 0x1000
            if op_class.is_memory:
                mem_address = memory_sequencer.next_address(rng)

            yield DynamicInstruction(
                seq=seq,
                op_class=op_class,
                dest=dest,
                sources=tuple(sources),
                latency=latencies[op_class],
                pc=this_pc,
                is_branch=is_branch,
                branch_taken=branch_taken,
                branch_target=branch_target,
                mem_address=mem_address,
                mnemonic=op_class.value,
            )

            if dest is not None:
                self._plan_reads(seq, dest, state, rng)

    # ------------------------------------------------------------------
    # construction helpers
    # ------------------------------------------------------------------

    @staticmethod
    def _build_mix(profile: BenchmarkProfile) -> tuple[list[OpClass], list[float]]:
        classes = list(profile.instruction_mix.keys())
        weights = [profile.instruction_mix[c] for c in classes]
        if not classes:
            raise WorkloadError(f"profile {profile.name} has an empty instruction mix")
        return classes, weights

    def _register_pool(self, reg_class: RegisterClass) -> list[LogicalRegister]:
        start = _NUM_LONG_LIVED
        return [LogicalRegister(reg_class, start + i) for i in range(_NUM_ROTATING)]

    def _long_lived_pool(self, reg_class: RegisterClass) -> list[LogicalRegister]:
        return [LogicalRegister(reg_class, i) for i in range(_NUM_LONG_LIVED)]

    def _build_static_branches(self, rng: random.Random) -> list[_StaticBranch]:
        spec = self.profile.branches
        branches: list[_StaticBranch] = []
        code_base = 0x1000
        code_size = self.profile.code_footprint_bytes
        for i in range(spec.num_static_branches):
            branch_pc = code_base + (rng.randrange(code_size // 4)) * 4
            target = code_base + (rng.randrange(code_size // 4)) * 4
            is_loop = rng.random() < spec.loop_fraction
            if is_loop:
                trip = max(2, int(rng.gauss(spec.loop_trip_count, spec.loop_trip_count / 4)))
                branches.append(
                    _StaticBranch(pc=branch_pc, target=target, is_loop=True, trip_count=trip)
                )
            else:
                pattern: tuple[bool, ...] = ()
                if rng.random() < spec.correlated_fraction:
                    length = rng.choice((2, 3, 4, 6))
                    pattern = tuple(rng.random() < spec.data_dependent_bias
                                    for _ in range(length))
                branches.append(
                    _StaticBranch(
                        pc=branch_pc,
                        target=target,
                        is_loop=False,
                        bias=spec.data_dependent_bias,
                        pattern=pattern,
                    )
                )
        return branches

    # ------------------------------------------------------------------
    # per-instruction helpers
    # ------------------------------------------------------------------

    def _sample_distance(self, rng: random.Random) -> int:
        """Sample a producer→consumer distance (>= 1 dynamic instructions)."""
        p = self.profile.dependency_locality
        distance = 1
        while rng.random() > p and distance < 256:
            distance += 1
        return distance

    def _plan_reads(
        self, seq: int, dest: LogicalRegister, state: _GeneratorState, rng: random.Random
    ) -> None:
        """Decide how many times the value produced at ``seq`` will be read."""
        profile = self.profile
        draw = rng.random()
        if draw < profile.never_read_fraction:
            num_reads = 0
        elif draw < profile.never_read_fraction + profile.read_once_fraction:
            num_reads = 1
        elif draw < (profile.never_read_fraction + profile.read_once_fraction
                     + profile.read_twice_fraction):
            num_reads = 2
        else:
            num_reads = 3 + int(rng.random() * 3)
        state.last_writer[dest] = seq
        state.protected[dest] = num_reads
        for _ in range(num_reads):
            due = seq + self._sample_distance(rng)
            heapq.heappush(state.pending_reads, _PendingRead(due, seq, dest))

    _NO_READS: tuple[_PendingRead, ...] = ()

    def _due_reads(self, seq: int, state: _GeneratorState):
        pending = state.pending_reads
        if not pending or pending[0].due_seq > seq:
            return self._NO_READS
        due: list[_PendingRead] = []
        while pending and pending[0].due_seq <= seq:
            due.append(heapq.heappop(pending))
        return due

    def _pick_sources(
        self,
        seq: int,
        op_class: OpClass,
        reg_class: RegisterClass,
        state: _GeneratorState,
        rng: random.Random,
        long_lived_int: list[LogicalRegister],
        long_lived_fp: list[LogicalRegister],
    ) -> list[LogicalRegister]:
        num_sources = self._num_sources(op_class)
        if num_sources == 2 and op_class is OpClass.INT_ALU and rng.random() < 0.40:
            # A sizable fraction of integer ALU operations take an immediate
            # operand (addi, compare-with-constant...), i.e. a single
            # register source.
            num_sources = 1
        if num_sources == 0:
            return []
        sources: list[LogicalRegister] = []
        due = self._due_reads(seq, state)
        # Most instructions chain on a single recently produced value (the
        # other operand being a loop invariant, base pointer or constant);
        # a minority combine two in-flight values (a*b+c style).  This is
        # what keeps the number of simultaneously "live and needed"
        # registers small, as the paper measures in Figure 3.
        max_chained = 2 if rng.random() < self.profile.two_chained_fraction else 1
        for read in due:
            if len(sources) >= min(num_sources, max_chained):
                # Put it back for a later instruction to consume.
                heapq.heappush(state.pending_reads, read)
                continue
            if state.last_writer.get(read.register) == read.producer_seq:
                sources.append(read.register)
                remaining = state.protected.get(read.register, 0)
                if remaining > 0:
                    state.protected[read.register] = remaining - 1

        long_lived = long_lived_fp if reg_class is RegisterClass.FP else long_lived_int
        while len(sources) < num_sources:
            # Operands that are not part of a planned producer→consumer pair
            # mostly reference long-lived values (base pointers, constants,
            # loop invariants): these are the values that are read many
            # times, which keeps the "read at most once" fraction of
            # ordinary results at the level the paper reports (85–88%).
            if rng.random() < 0.72 + self.profile.long_range_fraction:
                sources.append(rng.choice(long_lived))
            else:
                sources.append(self._recent_register(reg_class, state, rng, long_lived))
        return sources[:num_sources]

    def _recent_register(
        self,
        reg_class: RegisterClass,
        state: _GeneratorState,
        rng: random.Random,
        long_lived: list[LogicalRegister],
    ) -> LogicalRegister:
        """Fallback operand when no planned read is due.

        Real code mixes tight dependences with references to older values
        (different loop iterations, other dataflow strands), so half of the
        fallback operands come from anywhere in the recent-writer window
        rather than hugging the most recent producer; this keeps the
        instruction-level parallelism of the streams realistic.
        """
        candidates = [
            (reg, written)
            for reg, written in state.last_writer.items()
            if reg.reg_class is reg_class and written >= 0
        ]
        if not candidates:
            return rng.choice(long_lived)
        candidates.sort(key=lambda item: -item[1])
        if rng.random() < 0.5:
            index = rng.randrange(len(candidates))
        else:
            index = min(self._sample_distance(rng) - 1, len(candidates) - 1)
        return candidates[index][0]

    @staticmethod
    def _num_sources(op_class: OpClass) -> int:
        if op_class is OpClass.NOP:
            return 0
        if op_class is OpClass.LOAD:
            return 1
        return 2

    def _pick_destination(
        self,
        seq: int,
        reg_class: RegisterClass,
        state: _GeneratorState,
        rng: random.Random,
        rotating_int: list[LogicalRegister],
        rotating_fp: list[LogicalRegister],
        long_lived_int: list[LogicalRegister],
        long_lived_fp: list[LogicalRegister],
        rotate_index: dict[RegisterClass, int],
    ) -> LogicalRegister:
        # Occasionally refresh a long-lived register so it is not stale forever.
        long_lived = long_lived_fp if reg_class is RegisterClass.FP else long_lived_int
        if rng.random() < 0.005:
            return rng.choice(long_lived)
        pool = rotating_fp if reg_class is RegisterClass.FP else rotating_int
        # Prefer a register with no outstanding planned reads, to avoid
        # destroying a planned dependence; scan at most the whole pool.
        for _ in range(len(pool)):
            index = rotate_index[reg_class] % len(pool)
            rotate_index[reg_class] += 1
            candidate = pool[index]
            if state.protected.get(candidate, 0) <= 0:
                return candidate
        index = rotate_index[reg_class] % len(pool)
        rotate_index[reg_class] += 1
        return pool[index]
