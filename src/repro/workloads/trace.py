"""In-memory traces of dynamic instructions.

A :class:`Trace` is simply a materialized list of dynamic instructions
with convenience statistics.  Materializing a workload once and replaying
it against several register-file architectures guarantees that every
architecture sees *exactly* the same instruction stream, which is how the
paper's comparisons are set up.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Iterable, Iterator, Sequence

from repro.isa.instruction import DynamicInstruction
from repro.isa.opcodes import OpClass


@dataclass
class Trace:
    """A materialized dynamic instruction stream."""

    name: str
    instructions: Sequence[DynamicInstruction]

    def __len__(self) -> int:
        return len(self.instructions)

    def __iter__(self) -> Iterator[DynamicInstruction]:
        return iter(self.instructions)

    def __getitem__(self, index: int) -> DynamicInstruction:
        return self.instructions[index]

    # ------------------------------------------------------------------
    # summary statistics
    # ------------------------------------------------------------------

    def mix(self) -> dict[OpClass, float]:
        """Return the realized instruction mix as fractions."""
        counts = Counter(inst.op_class for inst in self.instructions)
        total = max(1, len(self.instructions))
        return {cls: counts.get(cls, 0) / total for cls in OpClass if counts.get(cls, 0)}

    def branch_count(self) -> int:
        return sum(1 for inst in self.instructions if inst.is_branch)

    def taken_branch_fraction(self) -> float:
        branches = [inst for inst in self.instructions if inst.is_branch]
        if not branches:
            return 0.0
        return sum(1 for b in branches if b.branch_taken) / len(branches)

    def memory_reference_count(self) -> int:
        return sum(1 for inst in self.instructions if inst.op_class.is_memory)

    def register_write_count(self) -> int:
        return sum(1 for inst in self.instructions if inst.dest is not None)

    def value_read_counts(self) -> Counter:
        """Count, for each produced value, how many times it is read.

        Returns a ``Counter`` mapping read-count → number of values.  A
        value is identified by (producer seq); a read is a later
        instruction sourcing the same logical register before it is
        overwritten.  This reproduces the paper's §3 statistic that most
        values are read at most once.
        """
        last_writer: dict = {}
        reads: Counter = Counter()
        producers: list[int] = []
        for inst in self.instructions:
            for src in inst.sources:
                writer = last_writer.get(src)
                if writer is not None:
                    reads[writer] += 1
            if inst.dest is not None:
                last_writer[inst.dest] = inst.seq
                producers.append(inst.seq)
        distribution: Counter = Counter()
        for producer in producers:
            distribution[reads.get(producer, 0)] += 1
        return distribution

    def read_at_most_once_fraction(self) -> float:
        """Fraction of produced values read zero or one times."""
        distribution = self.value_read_counts()
        total = sum(distribution.values())
        if total == 0:
            return 1.0
        return (distribution.get(0, 0) + distribution.get(1, 0)) / total


def materialize(name: str, stream: Iterable[DynamicInstruction]) -> Trace:
    """Materialize ``stream`` into a :class:`Trace` named ``name``."""
    return Trace(name=name, instructions=list(stream))
