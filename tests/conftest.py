"""Shared fixtures for the test suite.

Simulation-based tests use small instruction counts so the whole suite
stays fast; the fixtures centralize those budgets.
"""

from __future__ import annotations

import sys
from pathlib import Path

import pytest

# Allow running the tests without installing the package (e.g. straight
# from a source checkout): put src/ on the path if the import fails.
try:  # pragma: no cover - exercised only in non-installed environments
    import repro  # noqa: F401
except ModuleNotFoundError:  # pragma: no cover
    sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

from repro import ProcessorConfig, SyntheticWorkload, get_profile


@pytest.fixture(scope="session")
def small_config() -> ProcessorConfig:
    """A processor configuration with a small instruction budget."""
    return ProcessorConfig(max_instructions=1200)


@pytest.fixture(scope="session")
def tiny_config() -> ProcessorConfig:
    """An even smaller budget for tests that run many simulations."""
    return ProcessorConfig(max_instructions=500)


@pytest.fixture(scope="session")
def gcc_workload() -> SyntheticWorkload:
    return SyntheticWorkload(get_profile("gcc"))


@pytest.fixture(scope="session")
def swim_workload() -> SyntheticWorkload:
    return SyntheticWorkload(get_profile("swim"))


def make_stream(name: str, count: int):
    """Convenience: a fresh dynamic instruction stream for a benchmark."""
    return SyntheticWorkload(get_profile(name)).instructions(count)
