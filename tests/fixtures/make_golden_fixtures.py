"""Regenerate the golden simulation-statistics fixtures.

The fixtures in this directory pin down the exact ``SimulationStats``
produced by the simulator for one scenario per register-file
architecture.  ``tests/test_golden_stats.py`` asserts that the current
code reproduces them bit-for-bit, which is what lets the hot-path
optimization work on the pipeline/execute/regfile layers claim "faster,
not different".

The committed fixtures were generated from the seed-equivalent code path
(commit ``6af343d``, before the hot-path optimization pass).  Only
regenerate them when the simulation *semantics* are changed on purpose —
never to make a failing parity test pass:

    PYTHONPATH=src python tests/fixtures/make_golden_fixtures.py
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

FIXTURE_DIR = Path(__file__).resolve().parent

sys.path.insert(0, str(FIXTURE_DIR.parents[1] / "src"))

from repro.experiments.common import (  # noqa: E402
    OneLevelBankedFactory,
    RegisterFileCacheFactory,
    SingleBankedFactory,
)
from repro.pipeline.config import ProcessorConfig  # noqa: E402
from repro.pipeline.processor import simulate  # noqa: E402
from repro.workloads.profiles import get_profile  # noqa: E402
from repro.workloads.synthetic import SyntheticWorkload  # noqa: E402

#: Instructions committed per scenario (stream is longer so the pipeline
#: never drains early).
INSTRUCTIONS = 2500
STREAM_LENGTH = 3500

#: name -> (profile, factory, config overrides)
SCENARIOS = {
    "single_banked_1c": (
        "gcc",
        SingleBankedFactory(latency=1, bypass_levels=1, name="1-cycle single-banked"),
        {},
    ),
    "single_banked_2c_full_bypass": (
        "gcc",
        SingleBankedFactory(
            latency=2, bypass_levels=2, read_ports=6, write_ports=4,
            name="2-cycle single-banked, full bypass",
        ),
        {},
    ),
    "single_banked_2c_1_bypass": (
        "perl",
        SingleBankedFactory(
            latency=2, bypass_levels=1, name="2-cycle single-banked, 1 bypass",
        ),
        {},
    ),
    "one_level_banked": (
        "gcc",
        OneLevelBankedFactory(num_banks=4, read_ports_per_bank=2,
                              write_ports_per_bank=2),
        {},
    ),
    "register_file_cache": (
        "gcc",
        RegisterFileCacheFactory(
            caching="non-bypass", fetch="prefetch-first-pair",
            upper_read_ports=4, upper_write_ports=2, lower_write_ports=4,
            buses=2, upper_capacity=16,
        ),
        {},
    ),
    "register_file_cache_ready_occupancy": (
        "swim",
        RegisterFileCacheFactory(caching="ready", fetch="fetch-on-demand"),
        {"collect_occupancy": True},
    ),
}


def run_scenario(name: str) -> dict:
    profile_name, factory, overrides = SCENARIOS[name]
    workload = SyntheticWorkload(get_profile(profile_name))
    config = ProcessorConfig(max_instructions=INSTRUCTIONS, **overrides)
    stats = simulate(workload.instructions(STREAM_LENGTH), factory, config,
                     benchmark_name=profile_name)
    return stats.to_dict()


def main() -> int:
    for name in SCENARIOS:
        payload = run_scenario(name)
        path = FIXTURE_DIR / f"golden_{name}.json"
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"wrote {path} (cycles={payload['cycles']}, "
              f"ipc={payload['committed_instructions'] / payload['cycles']:.3f})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
