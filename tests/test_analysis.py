"""Unit tests for the analysis helpers (metrics, distributions, tables)."""

from collections import Counter

import pytest

from repro.analysis.distributions import (
    average_cdfs,
    cumulative_distribution,
    percentile_from_cdf,
)
from repro.analysis.metrics import (
    geometric_mean,
    harmonic_mean,
    instruction_throughput,
    percent_change,
    relative_series,
    speedup,
)
from repro.analysis.tables import format_figure, format_series, format_table
from repro.errors import ModelError


class TestMetrics:
    def test_harmonic_mean(self):
        assert harmonic_mean([2.0, 2.0]) == pytest.approx(2.0)
        assert harmonic_mean([1.0, 3.0]) == pytest.approx(1.5)
        assert harmonic_mean([4.0]) == 4.0

    def test_harmonic_mean_dominated_by_small_values(self):
        assert harmonic_mean([0.1, 10.0]) < 0.25

    def test_harmonic_mean_validation(self):
        with pytest.raises(ModelError):
            harmonic_mean([])
        with pytest.raises(ModelError):
            harmonic_mean([1.0, 0.0])

    def test_geometric_mean(self):
        assert geometric_mean([1.0, 4.0]) == pytest.approx(2.0)
        with pytest.raises(ModelError):
            geometric_mean([])

    def test_speedup_and_percent_change(self):
        assert speedup(3.0, 2.0) == pytest.approx(1.5)
        assert percent_change(3.0, 2.0) == pytest.approx(50.0)
        assert percent_change(1.8, 2.0) == pytest.approx(-10.0)
        with pytest.raises(ModelError):
            speedup(1.0, 0.0)

    def test_relative_series_mapping_and_sequence(self):
        assert relative_series({"a": 2.0, "b": 4.0}, 2.0) == {"a": 1.0, "b": 2.0}
        assert relative_series([2.0, 4.0], 2.0) == [1.0, 2.0]
        with pytest.raises(ModelError):
            relative_series([1.0], 0.0)

    def test_instruction_throughput(self):
        assert instruction_throughput(2.0, 4.0) == pytest.approx(0.5)
        with pytest.raises(ModelError):
            instruction_throughput(2.0, 0.0)


class TestDistributions:
    def test_cumulative_distribution(self):
        counts = Counter({0: 1, 2: 1})
        cdf = cumulative_distribution(counts, max_value=3)
        assert cdf == [50.0, 50.0, 100.0, 100.0]

    def test_overflow_folded_into_last_bucket(self):
        counts = Counter({10: 1})
        cdf = cumulative_distribution(counts, max_value=2)
        assert cdf == [0.0, 0.0, 100.0]

    def test_empty_distribution(self):
        assert cumulative_distribution(Counter(), 2) == [100.0, 100.0, 100.0]

    def test_average_cdfs(self):
        assert average_cdfs([[0.0, 100.0], [100.0, 100.0]]) == [50.0, 100.0]
        with pytest.raises(ModelError):
            average_cdfs([])
        with pytest.raises(ModelError):
            average_cdfs([[1.0], [1.0, 2.0]])

    def test_percentile_from_cdf(self):
        cdf = [10.0, 50.0, 90.0, 100.0]
        assert percentile_from_cdf(cdf, 50) == 1
        assert percentile_from_cdf(cdf, 90) == 2
        assert percentile_from_cdf(cdf, 99) == 3
        with pytest.raises(ModelError):
            percentile_from_cdf(cdf, 0)


class TestTables:
    def test_format_table_alignment(self):
        text = format_table(("name", "value"), [("a", 1.0), ("bbb", 22)], title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "name" in lines[1] and "value" in lines[1]
        assert len(lines) == 5

    def test_format_series(self):
        text = format_series({"s1": {"x": 1.0, "y": 2.0}, "s2": {"x": 3.0}})
        assert "s1" in text and "s2" in text
        assert "-" in text.splitlines()[-1]   # missing y value for s2

    def test_format_figure(self):
        text = format_figure([1, 2], {"a": [0.5, 0.6], "b": [0.7]})
        assert "0.500" in text and "0.700" in text
