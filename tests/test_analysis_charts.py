"""Unit tests for the ASCII chart helpers."""

import pytest

from repro.analysis.charts import horizontal_bar_chart, series_chart, sparkline
from repro.errors import ModelError


class TestHorizontalBarChart:
    def test_largest_value_fills_the_width(self):
        chart = horizontal_bar_chart({"a": 1.0, "b": 2.0}, width=10)
        lines = chart.splitlines()
        assert lines[1].count("█") == 10
        assert lines[0].count("█") == 5

    def test_title_is_first_line(self):
        chart = horizontal_bar_chart({"a": 1.0}, title="My chart")
        assert chart.splitlines()[0] == "My chart"

    def test_values_are_printed(self):
        chart = horizontal_bar_chart({"x": 1.234}, value_format="{:.2f}")
        assert "1.23" in chart

    def test_empty_mapping_rejected(self):
        with pytest.raises(ModelError):
            horizontal_bar_chart({})

    def test_non_positive_maximum_rejected(self):
        with pytest.raises(ModelError):
            horizontal_bar_chart({"a": 0.0})

    def test_bad_width_rejected(self):
        with pytest.raises(ModelError):
            horizontal_bar_chart({"a": 1.0}, width=0)

    def test_labels_aligned(self):
        chart = horizontal_bar_chart({"a": 1.0, "longer": 1.0})
        lines = chart.splitlines()
        assert lines[0].index("█") == lines[1].index("█")


class TestSparkline:
    def test_length_matches_series(self):
        assert len(sparkline([1, 2, 3, 4])) == 4

    def test_flat_series(self):
        assert sparkline([2.0, 2.0, 2.0]) == "▌▌▌"

    def test_monotone_series_uses_increasing_blocks(self):
        line = sparkline([0, 1, 2, 3])
        assert line[0] < line[-1]

    def test_empty_series_rejected(self):
        with pytest.raises(ModelError):
            sparkline([])


class TestSeriesChart:
    def test_contains_every_series_name(self):
        chart = series_chart(["a", "b"], {"s1": [1.0, 2.0], "s2": [2.0, 1.0]})
        assert "s1" in chart and "s2" in chart

    def test_length_mismatch_rejected(self):
        with pytest.raises(ModelError):
            series_chart(["a"], {"s1": [1.0, 2.0]})

    def test_empty_series_rejected(self):
        with pytest.raises(ModelError):
            series_chart(["a"], {})
