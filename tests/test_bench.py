"""Tests for the performance subsystem (``repro.bench``)."""

from __future__ import annotations

import json

import pytest

from repro.bench.report import (
    BenchReport,
    BenchReportError,
    ScenarioResult,
    compare_reports,
    environment_fingerprint,
    next_report_index,
)
from repro.bench.runner import BenchmarkRunner, run_and_save
from repro.bench.scenarios import (
    component_scenarios,
    headline_scenario,
    simulation_scenarios,
    with_budget,
)
from repro.bench.__main__ import main as bench_main


def _report(index, scenarios, calibration=1_000_000.0):
    return BenchReport(
        index=index,
        created="2026-07-30T00:00:00+00:00",
        environment={"python_version": "3.11"},
        calibration_score=calibration,
        scenarios=scenarios,
    )


def _sim_result(name, cycles, wall):
    return ScenarioResult(
        name=name,
        kind="simulation",
        wall_seconds=wall,
        repeats=1,
        cycles=cycles,
        instructions=cycles,
        cycles_per_second=cycles / wall,
        instructions_per_second=cycles / wall,
    )


class TestScenarios:
    def test_quick_matrix_has_headline_and_all_architectures(self):
        scenarios = simulation_scenarios(quick=True)
        names = [s.name for s in scenarios]
        assert len(names) == len(set(names))
        headline = [s for s in scenarios if s.headline]
        assert len(headline) == 1
        architectures = {s.name.split("/")[2] for s in scenarios if not s.headline}
        assert {"1-cycle", "2-cycle-1-bypass", "one-level-banked",
                "register-file-cache"} <= architectures

    def test_quick_budgets_are_smaller(self):
        quick = headline_scenario(quick=True)
        full = headline_scenario(quick=False)
        assert quick.instructions < full.instructions

    def test_component_scenarios_reuse_benchmarks_package(self):
        scenarios = component_scenarios()
        # The repository checkout has benchmarks/ importable via the cwd.
        if not scenarios:
            pytest.skip("benchmarks/ package not importable from here")
        assert all(s.source.startswith("benchmarks.bench_components.")
                   for s in scenarios)
        assert scenarios[0].run() > 0

    def test_scenario_run_is_deterministic(self):
        scenario = with_budget(headline_scenario(quick=True), 300)
        first = scenario.run().to_dict()
        second = scenario.run().to_dict()
        assert first == second


class TestRunnerAndReport:
    def test_runner_produces_schema_versioned_report(self, tmp_path):
        scenario = with_budget(headline_scenario(quick=True), 300)
        runner = BenchmarkRunner(quick=True, repeats=1, simulations=[scenario],
                                 sweeps=[], sampled_sweeps=[], services=[], stores=[],
                                 include_components=False)
        report = runner.run(index=7)
        assert report.schema == 1
        assert report.index == 7
        assert report.calibration_score > 0
        [result] = report.scenarios
        assert result.cycles and result.cycles_per_second > 0
        assert result.stats_digest and len(result.stats_digest) == 64
        path = report.save(str(tmp_path))
        assert path.endswith("BENCH_7.json")
        loaded = BenchReport.load(path)
        assert loaded.to_dict() == report.to_dict()

    def test_run_and_save_auto_numbers_against_existing_reports(self, tmp_path):
        (tmp_path / "BENCH_3.json").write_text("{}")
        scenario = with_budget(headline_scenario(quick=True), 200)
        _, path = run_and_save(
            output_dir=str(tmp_path), quick=True, repeats=1,
            include_components=False, name_filter="headline",
        )
        assert path.endswith("BENCH_4.json")

    def test_next_report_index_scans_multiple_directories(self, tmp_path):
        first = tmp_path / "a"
        second = tmp_path / "b"
        first.mkdir()
        second.mkdir()
        (first / "BENCH_1.json").write_text("{}")
        (second / "BENCH_5.json").write_text("{}")
        assert next_report_index([str(first), str(second), "/nonexistent"]) == 6
        assert next_report_index([str(tmp_path)]) == 1

    def test_environment_fingerprint_fields(self):
        env = environment_fingerprint()
        assert env["python_version"]
        assert env["cpu_count"] >= 1

    def test_load_rejects_unknown_schema(self, tmp_path):
        path = tmp_path / "BENCH_9.json"
        path.write_text(json.dumps({"schema": 99, "index": 9}))
        with pytest.raises(BenchReportError):
            BenchReport.load(str(path))


class TestCompare:
    def test_regression_beyond_threshold_flagged(self):
        baseline = _report(1, [_sim_result("headline", 10_000, 1.0)])
        current = _report(2, [_sim_result("headline", 10_000, 2.0)])
        comparison = compare_reports(baseline, current, threshold=0.25)
        assert not comparison.ok
        [regression] = comparison.regressions
        assert regression.name == "headline"
        assert regression.change_fraction == pytest.approx(-0.5)

    def test_small_slowdown_within_threshold_passes(self):
        baseline = _report(1, [_sim_result("headline", 10_000, 1.0)])
        current = _report(2, [_sim_result("headline", 10_000, 1.1)])
        assert compare_reports(baseline, current, threshold=0.25).ok

    def test_calibration_normalization_cancels_machine_speed(self):
        # Same simulator speed relative to the interpreter, but the
        # "current" machine is 2x slower overall: no regression.
        baseline = _report(1, [_sim_result("headline", 10_000, 1.0)],
                           calibration=2_000_000.0)
        current = _report(2, [_sim_result("headline", 10_000, 2.0)],
                          calibration=1_000_000.0)
        assert compare_reports(baseline, current, threshold=0.25).ok
        # Raw mode sees the slowdown.
        raw = compare_reports(baseline, current, threshold=0.25, normalize=False)
        assert not raw.ok

    def test_missing_scenarios_fail_the_gate(self):
        baseline = _report(1, [_sim_result("gone", 1000, 1.0)])
        current = _report(2, [_sim_result("fresh", 1000, 1.0)])
        comparison = compare_reports(baseline, current)
        assert comparison.missing_scenarios == ["gone"]
        assert comparison.new_scenarios == ["fresh"]
        # Lost coverage must not pass silently, even with no regressions.
        assert not comparison.ok
        assert "LOST COVERAGE" in comparison.render()

    def test_new_scenarios_alone_do_not_fail_the_gate(self):
        baseline = _report(1, [_sim_result("headline", 1000, 1.0)])
        current = _report(2, [_sim_result("headline", 1000, 1.0),
                              _sim_result("fresh", 1000, 1.0)])
        assert compare_reports(baseline, current).ok

    def test_invalid_threshold_rejected(self):
        baseline = _report(1, [])
        with pytest.raises(BenchReportError):
            compare_reports(baseline, baseline, threshold=0.0)


class TestCli:
    def test_cli_list_mode(self, capsys):
        assert bench_main(["--quick", "--list"]) == 0
        out = capsys.readouterr().out
        assert "headline/gcc/register-file-cache" in out

    def test_cli_run_filter_and_compare_roundtrip(self, tmp_path, capsys):
        argv = ["--quick", "--repeats", "1", "--filter", "matrix/gcc/1-cycle",
                "--no-components", "--quiet", "--output-dir", str(tmp_path)]
        assert bench_main(argv) == 0
        assert bench_main(argv) == 0
        reports = sorted(tmp_path.glob("BENCH_*.json"))
        assert [p.name for p in reports] == ["BENCH_1.json", "BENCH_2.json"]
        capsys.readouterr()
        code = bench_main(["compare", str(reports[0]), str(reports[1]),
                           "--threshold", "0.9"])
        out = capsys.readouterr().out
        assert "perf gate verdict" in out
        assert code == 0

    def test_cli_compare_detects_regression(self, tmp_path, capsys):
        baseline = _report(1, [_sim_result("headline", 10_000, 1.0)])
        current = _report(2, [_sim_result("headline", 10_000, 10.0)])
        base_path = baseline.save(str(tmp_path))
        cur_path = current.save(str(tmp_path))
        assert bench_main(["compare", base_path, cur_path]) == 1
        assert "REGRESSION" in capsys.readouterr().out

    def test_cli_rejects_bad_repeats(self, capsys):
        assert bench_main(["--repeats", "0"]) == 2

    def test_same_code_same_digest(self, tmp_path):
        """Two runs of the same scenario must agree on the stats digest."""
        scenario = with_budget(headline_scenario(quick=True), 200)
        runner = BenchmarkRunner(repeats=1, simulations=[scenario],
                                 sweeps=[], sampled_sweeps=[], services=[], stores=[],
                                 include_components=False)
        first = runner.run(index=1).scenarios[0].stats_digest
        second = runner.run(index=2).scenarios[0].stats_digest
        assert first == second

    def test_sweep_replay_and_live_agree_on_stats_digest(self):
        """The two execution modes of one sweep matrix must produce
        bit-identical results: the digest over every point's statistics
        is the determinism guard for the trace-replay engine."""
        from repro.bench.scenarios import SweepScenario

        replay = SweepScenario(name="sweep/x/replay", profile="gcc",
                               instructions=400, use_trace_replay=True)
        live = SweepScenario(name="sweep/x/live", profile="gcc",
                             instructions=400, use_trace_replay=False)
        replay_out = replay.run()
        live_out = live.run()
        assert replay_out["points"] == live_out["points"] == 16
        assert replay_out["stats_digest"] == live_out["stats_digest"]
        assert replay_out["summary"]["traces_recorded"] == 1

    def test_sweep_result_in_report(self):
        from repro.bench.scenarios import SweepScenario

        sweep = SweepScenario(name="sweep/x/replay", profile="gcc",
                              instructions=300, use_trace_replay=True,
                              headline_sweep=True)
        runner = BenchmarkRunner(repeats=1, simulations=[], sweeps=[sweep],
                                 sampled_sweeps=[], services=[], stores=[],
                                 include_components=False)
        report = runner.run(index=1)
        [result] = report.scenarios
        assert result.kind == "sweep"
        assert result.operations == 16
        assert result.operations_per_second > 0
        assert result.rate == result.operations_per_second
        assert result.metadata["headline_sweep"] is True
        assert result.metadata["points_per_minute"] > 0


class TestStoreScenario:
    def _scenario(self):
        from repro.bench.scenarios import StoreScenario

        return StoreScenario(name="store_throughput/sharded-segment-log",
                             entries=60, value_bytes=256, read_passes=1)

    def test_store_result_in_report(self):
        runner = BenchmarkRunner(repeats=1, simulations=[], sweeps=[],
                                 sampled_sweeps=[], services=[],
                                 stores=[self._scenario()],
                                 include_components=False)
        report = runner.run(index=1)
        [result] = report.scenarios
        assert result.kind == "store"
        # 60 puts + 60 reads + 30 overwrites + 15 deletes + 1 compact
        # + 60 cold re-reads
        assert result.operations == 226
        assert result.operations_per_second > 0
        assert result.stats_digest and len(result.stats_digest) == 64
        assert result.metadata["num_shards"] == 16
        stats = result.metadata["store_stats"]
        assert stats["entries"] == 45  # 60 written, 15 deleted
        assert stats["compactions"] >= 1

    def test_scenario_is_quick_eligible_and_stably_named(self):
        from repro.bench.scenarios import store_scenarios

        (quick,) = store_scenarios(quick=True)
        (full,) = store_scenarios(quick=False)
        # The perf gate matches scenarios by name across reports, so the
        # quick CI run must carry the same name as the committed baseline.
        assert quick.name == full.name == "store_throughput/sharded-segment-log"
        assert quick.entries < full.entries

    def test_deterministic_digest(self):
        scenario = self._scenario()
        assert scenario.run()["stats_digest"] == scenario.run()["stats_digest"]


class TestSampledSweepScenario:
    def _scenario(self):
        from repro.bench.scenarios import SampledSweepScenario

        return SampledSweepScenario(
            name="sweep/gcc/sampled-vs-exact",
            profile="gcc",
            instructions=2000,
            sample="500:100:100",
            architectures=("mono-1c",),
        )

    def test_outcome_reports_speedup_and_interval(self):
        outcome = self._scenario().run()
        assert outcome["points"] == 1  # one architecture, measured both ways
        assert outcome["summary"]["architectures"] == ["mono-1c"]
        assert outcome["summary"]["exact_points"] == 1
        assert outcome["summary"]["sampled_points"] == 1
        assert outcome["per_point_speedup"] > 0
        assert outcome["sampling"]["stride"] == 500
        assert outcome["exact_seconds"] > 0 and outcome["sampled_seconds"] > 0

    def test_quick_and_full_share_the_gate_name(self):
        from repro.bench.scenarios import sampled_sweep_scenarios

        (quick,) = sampled_sweep_scenarios(quick=True)
        (full,) = sampled_sweep_scenarios(quick=False)
        assert quick.name == full.name == "sweep/gcc/sampled-vs-exact"
        # Quick mode shrinks the architecture set, never the stream: the
        # stride plan needs the full instruction budget to place windows.
        assert len(quick.architectures) < len(full.architectures)
        assert quick.instructions == full.instructions

    def test_deterministic_digest(self):
        assert (self._scenario().run()["stats_digest"]
                == self._scenario().run()["stats_digest"])

    def test_runner_copies_sampling_metadata(self):
        runner = BenchmarkRunner(repeats=1, simulations=[], sweeps=[],
                                 sampled_sweeps=[self._scenario()],
                                 services=[], stores=[],
                                 include_components=False)
        report = runner.run(index=1)
        (result,) = report.scenarios
        assert result.kind == "sweep"
        for field in ("exact_seconds", "sampled_seconds",
                      "per_point_speedup", "sampling", "summary"):
            assert field in result.metadata
