"""Failure-path coverage for ``python -m repro.bench compare``.

The perf gate's *failure* behaviour is what CI relies on; these tests
pin the exit codes for every way a comparison can go wrong: regression,
lost scenario coverage, malformed report files, and mismatched schema
versions.
"""

from __future__ import annotations

import json

import pytest

from repro.bench.__main__ import main
from repro.bench.report import BenchReport, ScenarioResult


def _report(index: int, scenarios: dict[str, float],
            calibration: float = 1000.0) -> BenchReport:
    return BenchReport(
        index=index,
        created="2026-07-30T00:00:00+00:00",
        environment={},
        calibration_score=calibration,
        scenarios=[
            ScenarioResult(
                name=name,
                kind="simulation",
                wall_seconds=1.0,
                repeats=1,
                cycles=int(rate),
                cycles_per_second=rate,
            )
            for name, rate in scenarios.items()
        ],
    )


@pytest.fixture()
def baseline_path(tmp_path):
    return _report(1, {"sim": 10_000.0, "extra": 5_000.0}).save(str(tmp_path / "a"))


class TestCompareExitCodes:
    def test_regression_exits_one(self, tmp_path, baseline_path, capsys):
        current = _report(2, {"sim": 2_000.0, "extra": 5_000.0}).save(str(tmp_path / "b"))
        assert main(["compare", baseline_path, current]) == 1
        out = capsys.readouterr().out
        assert "verdict: REGRESSION" in out

    def test_lost_scenario_coverage_exits_one(self, tmp_path, baseline_path, capsys):
        current = _report(2, {"sim": 10_000.0}).save(str(tmp_path / "b"))
        assert main(["compare", baseline_path, current]) == 1
        out = capsys.readouterr().out
        assert "MISSING from current report" in out
        assert "verdict: LOST COVERAGE" in out

    def test_matching_reports_exit_zero(self, tmp_path, baseline_path, capsys):
        current = _report(2, {"sim": 10_500.0, "extra": 5_100.0}).save(str(tmp_path / "b"))
        assert main(["compare", baseline_path, current]) == 0
        assert "verdict: OK" in capsys.readouterr().out

    def test_malformed_json_exits_two(self, tmp_path, baseline_path, capsys):
        mangled = tmp_path / "mangled.json"
        mangled.write_text("{definitely not json", encoding="utf-8")
        assert main(["compare", baseline_path, str(mangled)]) == 2
        assert "error:" in capsys.readouterr().err

    def test_missing_file_exits_two(self, tmp_path, baseline_path, capsys):
        assert main(["compare", baseline_path, str(tmp_path / "absent.json")]) == 2
        assert "error:" in capsys.readouterr().err

    def test_schema_mismatch_exits_two(self, tmp_path, baseline_path, capsys):
        future = _report(2, {"sim": 10_000.0, "extra": 5_000.0})
        payload = future.to_dict()
        payload["schema"] = 99
        path = tmp_path / "future.json"
        path.write_text(json.dumps(payload), encoding="utf-8")
        assert main(["compare", baseline_path, str(path)]) == 2
        err = capsys.readouterr().err
        assert "schema" in err

    def test_non_positive_threshold_exits_two(self, tmp_path, baseline_path, capsys):
        current = _report(2, {"sim": 10_000.0, "extra": 5_000.0}).save(str(tmp_path / "b"))
        assert main(["compare", baseline_path, current, "--threshold", "0"]) == 2
        assert "threshold" in capsys.readouterr().err

    def test_raw_mode_skips_calibration_normalization(self, tmp_path, capsys):
        # Same raw rates but wildly different calibration: normalized
        # comparison flags a regression, raw comparison passes.
        slow_machine = _report(1, {"sim": 10_000.0}, calibration=100.0).save(
            str(tmp_path / "a")
        )
        fast_machine = _report(2, {"sim": 10_000.0}, calibration=1_000.0).save(
            str(tmp_path / "b")
        )
        assert main(["compare", slow_machine, fast_machine]) == 1
        capsys.readouterr()
        assert main(["compare", slow_machine, fast_machine, "--raw"]) == 0
