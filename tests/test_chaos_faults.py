"""Unit tests for the chaos fault model and the injectable seams."""

from __future__ import annotations

import errno

import pytest

from repro.chaos import seams
from repro.chaos.faults import (
    ADVISORY_ACTIONS,
    RAISING_ACTIONS,
    ChaosFault,
    Fault,
    FaultInjector,
)


@pytest.fixture(autouse=True)
def clean_seams():
    seams.uninstall()
    yield
    seams.uninstall()


class TestFaultValidation:
    def test_unknown_action_rejected(self):
        with pytest.raises(ValueError):
            Fault(seam="storage.append", action="lightning")

    def test_at_must_be_positive(self):
        with pytest.raises(ValueError):
            Fault(seam="storage.append", action="enospc", at=0)

    def test_count_zero_rejected(self):
        with pytest.raises(ValueError):
            Fault(seam="storage.append", action="enospc", count=0)

    def test_negative_delay_rejected(self):
        with pytest.raises(ValueError):
            Fault(seam="engine.point", action="delay", delay_s=-1.0)

    def test_action_families_are_disjoint(self):
        assert not set(RAISING_ACTIONS) & set(ADVISORY_ACTIONS)


class TestFaultInjector:
    def test_enospc_raises_oserror_with_errno(self):
        injector = FaultInjector([
            Fault(seam="storage.append", action="enospc"),
        ])
        with pytest.raises(OSError) as caught:
            injector.fire("storage.append")
        assert caught.value.errno == errno.ENOSPC

    def test_crash_raises_chaos_fault(self):
        injector = FaultInjector([
            Fault(seam="engine.point", action="crash", message="boom"),
        ])
        with pytest.raises(ChaosFault, match="boom"):
            injector.fire("engine.point")

    def test_drop_and_reset_are_returned_not_raised(self):
        injector = FaultInjector([
            Fault(seam="http.response", action="drop", at=1),
            Fault(seam="http.response", action="reset", at=2),
        ])
        assert injector.fire("http.response") == "drop"
        assert injector.fire("http.response") == "reset"
        assert injector.fire("http.response") is None

    def test_at_window_is_one_based(self):
        injector = FaultInjector([
            Fault(seam="storage.append", action="enospc", at=3),
        ])
        injector.fire("storage.append")
        injector.fire("storage.append")
        with pytest.raises(OSError):
            injector.fire("storage.append")
        # count=1 by default: the window has passed.
        injector.fire("storage.append")

    def test_count_none_fires_forever(self):
        injector = FaultInjector([
            Fault(seam="storage.append", action="enospc", at=2, count=None),
        ])
        injector.fire("storage.append")
        for _ in range(5):
            with pytest.raises(OSError):
                injector.fire("storage.append")

    def test_match_filter_counts_only_matching_calls(self):
        injector = FaultInjector([
            Fault(seam="jobs.save", action="enospc", at=2,
                  match={"state": "running"}),
        ])
        # Non-matching calls don't advance the fault's window.
        injector.fire("jobs.save", state="queued")
        injector.fire("jobs.save", state="running")  # match #1
        injector.fire("jobs.save", state="queued")
        with pytest.raises(OSError):
            injector.fire("jobs.save", state="running")  # match #2

    def test_calls_counted_per_seam(self):
        injector = FaultInjector([])
        injector.fire("storage.append")
        injector.fire("storage.append")
        injector.fire("engine.point")
        assert injector.calls("storage.append") == 2
        assert injector.calls("engine.point") == 1
        assert injector.calls("http.response") == 0

    def test_log_records_fired_faults(self):
        injector = FaultInjector([
            Fault(seam="http.response", action="drop"),
        ])
        injector.fire("http.response")
        log = injector.log()
        assert len(log) == 1
        assert log[0]["seam"] == "http.response"
        assert log[0]["action"] == "drop"

    def test_seeded_rng_is_deterministic(self):
        a = FaultInjector([], seed=42)
        b = FaultInjector([], seed=42)
        assert [a.rng.random() for _ in range(5)] \
            == [b.rng.random() for _ in range(5)]


class TestSeams:
    def test_disabled_by_default(self):
        assert seams.active is None
        assert not seams.installed()

    def test_install_uninstall_roundtrip(self):
        injector = FaultInjector([])
        seams.install(injector)
        assert seams.installed()
        assert seams.active is injector
        seams.uninstall()
        assert seams.active is None

    def test_double_install_of_different_injector_rejected(self):
        seams.install(FaultInjector([]))
        with pytest.raises(RuntimeError):
            seams.install(FaultInjector([]))

    def test_reinstalling_the_same_injector_is_idempotent(self):
        injector = FaultInjector([])
        seams.install(injector)
        seams.install(injector)
        assert seams.active is injector

    def test_uninstall_when_nothing_installed_is_a_noop(self):
        seams.uninstall()
        seams.uninstall()
        assert seams.active is None
