"""The chaos harness: invariant helpers and the matrix runner."""

from __future__ import annotations

from repro.chaos import seams
from repro.chaos.harness import (
    ScenarioResult,
    canonical_result_bytes,
    check_terminal_record,
    run_matrix,
    summarize,
)
from repro.chaos.scenarios import QUICK_SCENARIOS, SCENARIOS


def test_canonical_bytes_are_key_order_independent():
    assert canonical_result_bytes({"a": 1, "b": [2, 3]}) \
        == canonical_result_bytes({"b": [2, 3], "a": 1})


class TestCheckTerminalRecord:
    def test_completed_within_accounting_is_clean(self):
        result = ScenarioResult(name="t", seed=0)
        check_terminal_record(
            {"id": "j", "state": "completed",
             "counters": {"executed": 1, "unique": 2}}, result)
        assert result.ok

    def test_overexecution_is_a_violation(self):
        result = ScenarioResult(name="t", seed=0)
        check_terminal_record(
            {"id": "j", "state": "completed",
             "counters": {"executed": 3, "unique": 2}}, result)
        assert not result.ok
        assert "single-flight" in result.violations[0]

    def test_failure_without_cause_is_a_violation(self):
        result = ScenarioResult(name="t", seed=0)
        check_terminal_record(
            {"id": "j", "state": "failed", "error": {}}, result)
        assert not result.ok

    def test_unexpected_cause_is_a_violation(self):
        result = ScenarioResult(name="t", seed=0)
        check_terminal_record(
            {"id": "j", "state": "failed",
             "error": {"code": "execution_error"}},
            result, allowed_failures=["deadline_exceeded"])
        assert not result.ok

    def test_non_terminal_is_a_violation(self):
        result = ScenarioResult(name="t", seed=0)
        check_terminal_record({"id": "j", "state": "running"}, result)
        assert not result.ok


def test_registry_quick_subset_pins_the_contract_scenarios():
    assert set(QUICK_SCENARIOS) <= set(SCENARIOS)
    # The robustness contract requires these two in every CI run.
    assert "replica-sigkill" in QUICK_SCENARIOS
    assert "enospc" in QUICK_SCENARIOS


def test_run_matrix_executes_a_real_scenario_and_summarizes():
    results = run_matrix(["torn-tail"], seed=3, quick=True)
    assert len(results) == 1
    assert results[0].ok, results[0].violations
    assert results[0].faults_injected == 1
    summary = summarize(results)
    assert summary["total"] == 1
    assert summary["failed"] == 0
    assert summary["violations"] == []
    assert seams.active is None  # the scenario unwound its injector


def test_crashing_scenario_is_reported_not_raised():
    from repro.chaos import scenarios as scenarios_mod

    def explode(result, seed, quick):
        raise RuntimeError("kaboom")

    scenarios_mod.SCENARIOS["__explode__"] = explode
    try:
        results = run_matrix(["__explode__"], seed=0)
    finally:
        del scenarios_mod.SCENARIOS["__explode__"]
    assert not results[0].ok
    assert "kaboom" in results[0].violations[0]
