"""Smoke tests for the example scripts.

Each example is imported from ``examples/`` and its ``main()`` executed
in-process with a tiny instruction budget, so a broken import, a renamed
API or a crash in any example fails the suite instead of the first user
who copies it.
"""

from __future__ import annotations

import importlib.util
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parents[1] / "examples"


def _load_example(name: str):
    spec = importlib.util.spec_from_file_location(
        f"examples_{name}", EXAMPLES_DIR / f"{name}.py"
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def _run_example(monkeypatch, capsys, name: str, argv: list[str]) -> str:
    module = _load_example(name)
    monkeypatch.setattr(sys, "argv", [f"{name}.py", *argv])
    module.main()
    return capsys.readouterr().out


def test_quickstart(monkeypatch, capsys):
    out = _run_example(monkeypatch, capsys, "quickstart", ["gcc", "400"])
    assert "benchmark: gcc (400 committed instructions)" in out
    assert "register file cache" in out
    assert "IPC ratio" in out


def test_compare_architectures(monkeypatch, capsys):
    out = _run_example(monkeypatch, capsys, "compare_architectures", ["300"])
    assert "IPC, unlimited ports, 300 instructions" in out
    assert "Hmean" in out
    assert "% IPC vs the 1-cycle register file" in out


def test_area_tradeoff(monkeypatch, capsys):
    out = _run_example(monkeypatch, capsys, "area_tradeoff", ["16000", "200"])
    assert "Best configuration under an area budget" in out
    assert "register file cache" in out
    assert "highest throughput under the budget" in out


def test_custom_kernel(monkeypatch, capsys):
    out = _run_example(monkeypatch, capsys, "custom_kernel", [])
    assert "dynamic instructions" in out
    assert "register file cache" in out
    assert out.count("IPC =") == 3


@pytest.mark.parametrize(
    "name", ["quickstart", "compare_architectures", "area_tradeoff", "custom_kernel"]
)
def test_every_example_has_a_main(name):
    module = _load_example(name)
    assert callable(module.main)
