"""Unit tests for the issue queue (instruction window)."""

import pytest

from repro.errors import SimulationError
from repro.execute.bypass import BypassNetwork
from repro.execute.issue_queue import IssueQueue
from repro.execute.scoreboard import ValueScoreboard
from repro.isa.instruction import DynamicInstruction, INT_LOGICAL_REGISTERS, RegisterClass
from repro.isa.opcodes import OpClass
from repro.rename.renamer import PhysicalRegister, RenamedInstruction


def _phys(index):
    return PhysicalRegister(RegisterClass.INT, index)


def _renamed(seq, dest=None, sources=()):
    inst = DynamicInstruction(
        seq=seq, op_class=OpClass.INT_ALU,
        dest=INT_LOGICAL_REGISTERS[1] if dest is not None else None,
        sources=tuple(INT_LOGICAL_REGISTERS[2] for _ in sources),
    )
    return RenamedInstruction(
        instruction=inst,
        dest=_phys(dest) if dest is not None else None,
        sources=tuple(_phys(s) for s in sources),
    )


def _queue(capacity=8, read_stages=1, bypass_levels=1):
    scoreboard = ValueScoreboard()
    bypass = BypassNetwork(read_stages, bypass_levels)
    return IssueQueue(capacity, scoreboard, bypass), scoreboard


class TestDispatchAndWakeup:
    def test_ready_at_dispatch_when_operands_available(self):
        queue, scoreboard = _queue()
        scoreboard.seed_architected(_phys(1))
        entry = queue.dispatch(_renamed(0, dest=40, sources=(1,)), cycle=5)
        assert entry.data_ready
        # Not selectable in the dispatch cycle, selectable from the next one.
        assert queue.schedulable(5) == []
        assert queue.schedulable(6) == [entry]

    def test_waits_for_unproduced_operand(self):
        queue, scoreboard = _queue()
        scoreboard.allocate(_phys(50), producer_seq=0)
        entry = queue.dispatch(_renamed(1, dest=41, sources=(50,)), cycle=0)
        assert not entry.data_ready
        assert queue.schedulable(10) == []
        became_ready = queue.wakeup(_phys(50), ex_end_cycle=7)
        assert became_ready == [entry]
        # With one read stage and full bypass, execution can start at 8,
        # i.e. issue at cycle 7.
        assert queue.schedulable(7) == [entry]
        assert queue.schedulable(6) == []

    def test_wakeup_with_missing_bypass_level_delays_consumer(self):
        queue, scoreboard = _queue(read_stages=2, bypass_levels=1)
        scoreboard.allocate(_phys(50), producer_seq=0)
        entry = queue.dispatch(_renamed(1, dest=41, sources=(50,)), cycle=0)
        queue.wakeup(_phys(50), ex_end_cycle=7)
        # earliest execute = 7 + 1 + (2-1) = 9 -> earliest issue = 7
        assert entry.earliest_ex_cycle == 9
        assert queue.schedulable(7) == [entry]

    def test_overflow(self):
        queue, scoreboard = _queue(capacity=1)
        scoreboard.seed_architected(_phys(1))
        queue.dispatch(_renamed(0, dest=40), cycle=0)
        assert queue.full
        with pytest.raises(SimulationError):
            queue.dispatch(_renamed(1, dest=41), cycle=0)


class TestSelect:
    def test_oldest_first_ordering(self):
        queue, scoreboard = _queue()
        scoreboard.seed_architected(_phys(1))
        older = queue.dispatch(_renamed(5, dest=41, sources=(1,)), cycle=0)
        younger = queue.dispatch(_renamed(6, dest=42, sources=(1,)), cycle=0)
        assert queue.schedulable(3) == [older, younger]

    def test_mark_issued_removes_entry(self):
        queue, scoreboard = _queue()
        scoreboard.seed_architected(_phys(1))
        entry = queue.dispatch(_renamed(0, dest=40, sources=(1,)), cycle=0)
        queue.mark_issued(entry, cycle=2)
        assert len(queue) == 0
        assert queue.schedulable(5) == []
        with pytest.raises(SimulationError):
            queue.mark_issued(entry, cycle=3)

    def test_defer_delays_selection(self):
        queue, scoreboard = _queue()
        scoreboard.seed_architected(_phys(1))
        entry = queue.dispatch(_renamed(0, dest=40, sources=(1,)), cycle=0)
        queue.defer(entry, until_cycle=10)
        assert queue.schedulable(5) == []
        assert queue.schedulable(10) == [entry]


class TestConsumersIndex:
    def test_waiting_consumers_of(self):
        queue, scoreboard = _queue()
        scoreboard.allocate(_phys(50), producer_seq=0)
        scoreboard.seed_architected(_phys(1))
        a = queue.dispatch(_renamed(1, dest=41, sources=(50,)), cycle=0)
        b = queue.dispatch(_renamed(2, dest=42, sources=(50, 1)), cycle=0)
        consumers = queue.waiting_consumers_of(_phys(50))
        assert {entry.seq for entry in consumers} == {1, 2}
        queue.mark_issued(a, cycle=1)
        consumers = queue.waiting_consumers_of(_phys(50))
        assert {entry.seq for entry in consumers} == {2}

    def test_waiting_source_registers(self):
        queue, scoreboard = _queue()
        scoreboard.seed_architected(_phys(1))
        scoreboard.allocate(_phys(50), producer_seq=0)
        queue.dispatch(_renamed(1, dest=41, sources=(50, 1)), cycle=0)
        registers = queue.waiting_source_registers()
        assert registers == {_phys(50), _phys(1)}

    def test_max_occupancy_tracked(self):
        queue, scoreboard = _queue()
        scoreboard.seed_architected(_phys(1))
        queue.dispatch(_renamed(0, dest=40, sources=(1,)), cycle=0)
        queue.dispatch(_renamed(1, dest=41, sources=(1,)), cycle=0)
        assert queue.max_occupancy == 2
