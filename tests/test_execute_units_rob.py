"""Unit tests for functional units, ROB, scoreboard and bypass model."""

import pytest

from repro.errors import ConfigurationError, SimulationError
from repro.execute.bypass import BypassNetwork
from repro.execute.functional_units import FunctionalUnitConfig, FunctionalUnitPool
from repro.execute.rob import ReorderBuffer
from repro.execute.scoreboard import ValueScoreboard, ValueState
from repro.isa.instruction import DynamicInstruction, INT_LOGICAL_REGISTERS, RegisterClass
from repro.isa.opcodes import OpClass
from repro.rename.renamer import PhysicalRegister, RenamedInstruction


def _renamed(seq, dest_index=None):
    inst = DynamicInstruction(seq=seq, op_class=OpClass.INT_ALU,
                              dest=INT_LOGICAL_REGISTERS[1])
    dest = PhysicalRegister(RegisterClass.INT, dest_index) if dest_index is not None else None
    return RenamedInstruction(instruction=inst, dest=dest)


class TestFunctionalUnits:
    def test_table1_defaults(self):
        config = FunctionalUnitConfig()
        assert (config.simple_int, config.int_mul_div, config.simple_fp,
                config.fp_div, config.load_store) == (6, 3, 4, 2, 4)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            FunctionalUnitConfig(simple_int=0)

    def test_issue_limit_per_cycle(self):
        pool = FunctionalUnitPool(FunctionalUnitConfig(simple_int=2))
        pool.begin_cycle(0)
        pool.issue(OpClass.INT_ALU, 0, 1)
        pool.issue(OpClass.INT_ALU, 0, 1)
        assert not pool.can_issue(OpClass.INT_ALU, 0)
        with pytest.raises(ConfigurationError):
            pool.issue(OpClass.INT_ALU, 0, 1)

    def test_pipelined_units_free_next_cycle(self):
        pool = FunctionalUnitPool(FunctionalUnitConfig(simple_fp=1))
        pool.begin_cycle(0)
        pool.issue(OpClass.FP_MUL, 0, 2)
        pool.begin_cycle(1)
        assert pool.can_issue(OpClass.FP_MUL, 1)

    def test_divider_busy_for_full_latency(self):
        pool = FunctionalUnitPool(FunctionalUnitConfig(fp_div=1))
        pool.begin_cycle(0)
        pool.issue(OpClass.FP_DIV, 0, 14)
        pool.begin_cycle(5)
        assert not pool.can_issue(OpClass.FP_DIV, 5)
        pool.begin_cycle(14)
        assert pool.can_issue(OpClass.FP_DIV, 14)

    def test_branches_use_simple_int_units(self):
        assert FunctionalUnitPool.group_for(OpClass.BRANCH) == "simple_int"

    def test_utilization(self):
        pool = FunctionalUnitPool()
        pool.begin_cycle(0)
        pool.issue(OpClass.INT_ALU, 0, 1)
        utilization = pool.utilization(total_cycles=10)
        assert 0 < utilization["simple_int"] <= 1


class TestReorderBuffer:
    def test_dispatch_commit_in_order(self):
        rob = ReorderBuffer(capacity=4)
        rob.dispatch(_renamed(0), 0)
        rob.dispatch(_renamed(1), 0)
        rob.mark_completed(0, 3)
        rob.mark_completed(1, 2)
        ready = rob.committable(width=4, cycle=4)
        assert [e.seq for e in ready] == [0, 1]
        rob.commit(0)
        with pytest.raises(SimulationError):
            rob.commit(0)

    def test_commit_blocked_by_incomplete_head(self):
        rob = ReorderBuffer(capacity=4)
        rob.dispatch(_renamed(0), 0)
        rob.dispatch(_renamed(1), 0)
        rob.mark_completed(1, 1)
        assert rob.committable(width=4, cycle=5) == []

    def test_commit_width_respected(self):
        rob = ReorderBuffer(capacity=16)
        for seq in range(10):
            rob.dispatch(_renamed(seq), 0)
            rob.mark_completed(seq, 1)
        assert len(rob.committable(width=4, cycle=3)) == 4

    def test_completion_cycle_gates_commit(self):
        rob = ReorderBuffer(capacity=4)
        rob.dispatch(_renamed(0), 0)
        rob.mark_completed(0, 5)
        assert rob.committable(width=1, cycle=5) == []
        assert len(rob.committable(width=1, cycle=6)) == 1

    def test_overflow(self):
        rob = ReorderBuffer(capacity=1)
        rob.dispatch(_renamed(0), 0)
        assert rob.full
        with pytest.raises(SimulationError):
            rob.dispatch(_renamed(1), 0)

    def test_program_order_enforced(self):
        rob = ReorderBuffer(capacity=4)
        rob.dispatch(_renamed(3), 0)
        with pytest.raises(SimulationError):
            rob.dispatch(_renamed(1), 0)

    def test_out_of_order_commit_rejected(self):
        rob = ReorderBuffer(capacity=4)
        rob.dispatch(_renamed(0), 0)
        rob.dispatch(_renamed(1), 0)
        with pytest.raises(SimulationError):
            rob.commit(1)


class TestScoreboard:
    def test_allocate_and_get(self):
        scoreboard = ValueScoreboard()
        register = PhysicalRegister(RegisterClass.INT, 40)
        state = scoreboard.allocate(register, producer_seq=7)
        assert isinstance(state, ValueState)
        assert not state.produced
        assert scoreboard.get(register) is state

    def test_get_unknown_raises(self):
        scoreboard = ValueScoreboard()
        with pytest.raises(SimulationError):
            scoreboard.get(PhysicalRegister(RegisterClass.INT, 1))

    def test_architected_seed_is_available(self):
        scoreboard = ValueScoreboard()
        register = PhysicalRegister(RegisterClass.FP, 2)
        scoreboard.seed_architected(register)
        state = scoreboard.get(register)
        assert state.produced and state.written_back and state.rf_ready_cycle == 0

    def test_read_recording(self):
        scoreboard = ValueScoreboard()
        register = PhysicalRegister(RegisterClass.INT, 40)
        scoreboard.allocate(register, 0)
        scoreboard.record_read(register, "bypass")
        scoreboard.record_read(register, "upper")
        state = scoreboard.get(register)
        assert state.consumed_via_bypass
        assert state.reads_from_bypass == 1 and state.reads_from_upper == 1
        with pytest.raises(SimulationError):
            scoreboard.record_read(register, "sideways")

    def test_release(self):
        scoreboard = ValueScoreboard()
        register = PhysicalRegister(RegisterClass.INT, 40)
        scoreboard.allocate(register, 0)
        scoreboard.release(register)
        assert not scoreboard.contains(register)


class TestBypassNetwork:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            BypassNetwork(read_stages=0, bypass_levels=0)
        with pytest.raises(ConfigurationError):
            BypassNetwork(read_stages=1, bypass_levels=2)

    def test_full_bypass_back_to_back(self):
        bypass = BypassNetwork(read_stages=2, bypass_levels=2)
        assert bypass.earliest_consumer_execute(producer_ex_end=10) == 11
        assert bypass.timing.extra_consumer_latency == 0

    def test_missing_level_adds_latency(self):
        bypass = BypassNetwork(read_stages=2, bypass_levels=1)
        assert bypass.earliest_consumer_execute(producer_ex_end=10) == 12
        assert bypass.timing.extra_consumer_latency == 1

    def test_served_by_bypass_vs_regfile(self):
        bypass = BypassNetwork(read_stages=1, bypass_levels=1)
        # Value written to the register file at cycle 12.
        assert bypass.served_by_bypass(10, rf_ready_cycle=12, consumer_ex_start=11)
        assert not bypass.served_by_bypass(10, rf_ready_cycle=12, consumer_ex_start=14)
        assert bypass.served_by_bypass(10, rf_ready_cycle=None, consumer_ex_start=20)

    def test_statistics(self):
        bypass = BypassNetwork(1, 1)
        bypass.record_bypass_read()
        bypass.record_regfile_read()
        assert bypass.bypass_fraction == 0.5
