"""Tests of the experiment harness (small budgets so they stay fast)."""

import pytest

from repro.experiments import (
    figure1,
    figure2,
    figure3,
    figure5,
    figure6,
    figure7,
    figure8,
    figure9_table2,
    headline,
    value_reuse,
)
from repro.experiments.common import (
    ExperimentSettings,
    SimulationCache,
    architecture_factories,
    register_file_cache_factory,
    suite_harmonic_mean,
    with_hmean,
)
from repro.experiments.runner import EXPERIMENTS, build_parser, run_experiments
from repro.pipeline.stats import SimulationStats


#: One small integer and one small FP benchmark keep harness tests quick.
QUICK = ExperimentSettings(instructions_per_benchmark=800, warmup_instructions=200,
                           benchmarks=["m88ksim", "swim"])


@pytest.fixture(scope="module")
def shared_cache() -> SimulationCache:
    return SimulationCache(QUICK)


class TestCommon:
    def test_settings_suite_filtering(self):
        assert QUICK.suite("int") == ["m88ksim"]
        assert QUICK.suite("fp") == ["swim"]
        full = ExperimentSettings()
        assert len(full.suite("all")) == 18

    def test_settings_validation(self):
        with pytest.raises(Exception):
            ExperimentSettings(instructions_per_benchmark=0)

    def test_processor_config_override(self):
        config = QUICK.processor_config(num_int_physical=64)
        assert config.max_instructions == 800
        assert config.num_int_physical == 64

    def test_simulation_cache_memoizes(self, shared_cache):
        factories = architecture_factories()
        first = shared_cache.run("swim", factories["1-cycle"], "1-cycle")
        second = shared_cache.run("swim", factories["1-cycle"], "1-cycle")
        assert first is second
        assert isinstance(first, SimulationStats)

    def test_suite_helpers(self, shared_cache):
        ipcs = shared_cache.suite_ipcs("fp", architecture_factories()["1-cycle"], "1-cycle")
        assert set(ipcs) == {"swim"}
        extended = with_hmean(ipcs)
        assert extended["Hmean"] == pytest.approx(suite_harmonic_mean(ipcs))

    def test_register_file_cache_factory_policies(self):
        cache = register_file_cache_factory(caching="ready", fetch="fetch-on-demand")()
        assert cache.caching_policy.name == "ready"
        assert cache.fetch_policy.name == "fetch-on-demand"


class TestFigureExperiments:
    def test_figure1_shape(self, shared_cache):
        result = figure1.run(QUICK, register_counts=(48, 128), cache=shared_cache)
        assert result.data["register_counts"] == [48, 128]
        series = result.data["series"]
        assert len(series["SpecInt95"]) == 2
        assert series["SpecFP95"][1] >= series["SpecFP95"][0] * 0.95
        assert "Figure 1" in result.render()

    def test_figure2_ordering(self, shared_cache):
        result = figure2.run(QUICK, cache=shared_cache)
        for suite in ("SpecInt95", "SpecFP95"):
            series = result.data[suite]
            one = series["1-cycle, 1-bypass level"]["Hmean"]
            full = series["2-cycle, 2-bypass levels"]["Hmean"]
            single = series["2-cycle, 1-bypass level"]["Hmean"]
            assert one >= full >= single

    def test_figure3_cdf_properties(self, shared_cache):
        result = figure3.run(QUICK, cache=shared_cache)
        for suite in ("SpecInt95", "SpecFP95"):
            cdf = result.data[suite]["value_and_instruction"]
            ready = result.data[suite]["value_and_ready"]
            assert len(cdf) == 33
            assert cdf[-1] == pytest.approx(100.0, abs=0.01)
            # Ready values are a subset of needed values.
            assert all(r >= n - 1e-9 for r, n in zip(ready, cdf))

    def test_figure5_has_four_policies(self, shared_cache):
        result = figure5.run(QUICK, cache=shared_cache)
        assert len(result.data["SpecInt95"]) == 4

    def test_figure6_rfc_between_baselines(self, shared_cache):
        result = figure6.run(QUICK, cache=shared_cache)
        for suite in ("SpecInt95", "SpecFP95"):
            series = result.data[suite]
            one = series["1-cycle"]["Hmean"]
            rfc = series["non-bypass caching + prefetch-first-pair"]["Hmean"]
            two = series["2-cycle"]["Hmean"]
            assert two <= rfc <= one * 1.05

    def test_figure7_rfc_close_to_full_bypass(self, shared_cache):
        result = figure7.run(QUICK, cache=shared_cache)
        summary = result.data["SpecFP95_summary"]["vs_two_cycle_full_pct"]
        assert -40.0 < summary < 20.0

    def test_value_reuse_fractions(self, shared_cache):
        result = value_reuse.run(QUICK, cache=shared_cache)
        for suite in ("SpecInt95", "SpecFP95"):
            fractions = result.data[suite]
            total = (fractions["never_read"] + fractions["read_once"]
                     + fractions["read_twice"] + fractions["read_three_plus"])
            assert total == pytest.approx(1.0, abs=1e-6)
            assert fractions["read_at_most_once"] > 0.5

    def test_figure9_table2_relative_throughput(self, shared_cache):
        result = figure9_table2.run(QUICK, cache=shared_cache)
        assert len(result.data["table2"]) == 4
        series = result.data["SpecInt95"]
        assert series["1-cycle"]["C1"] == pytest.approx(1.0)
        # The register file cache must clearly outperform the 1-cycle design
        # once the access time is factored in.
        rfc_best = max(series["non-bypass caching + prefetch-first-pair"].values())
        one_best = max(series["1-cycle"].values())
        assert rfc_best > one_best

    def test_headline_contains_all_claims(self, shared_cache):
        result = headline.run(QUICK, cache=shared_cache)
        assert len(result.data["measured"]) == 8
        assert "paper" in result.body


class TestFigure8:
    def test_figure8_pareto_points(self):
        # Use an even smaller budget: figure 8 sweeps many configurations.
        settings = ExperimentSettings(instructions_per_benchmark=400,
                                      warmup_instructions=100,
                                      benchmarks=["m88ksim", "swim"])
        result = figure8.run(settings)
        for suite in ("SpecInt95", "SpecFP95"):
            for architecture, points in result.data[suite].items():
                assert points, f"no pareto points for {architecture}"
                areas = [p["area_10Klambda2"] for p in points]
                perfs = [p["relative_performance"] for p in points]
                assert areas == sorted(areas)
                # Performance climbs along the frontier; it may only
                # repeat on an exact (area, performance) tie — distinct
                # port mixes pricing and performing identically are all
                # legitimate frontier members.
                pairs = list(zip(areas, perfs))
                for (area_a, perf_a), (area_b, perf_b) in zip(pairs, pairs[1:]):
                    assert perf_b > perf_a or (
                        perf_b == perf_a and area_b == area_a
                    )


class TestRunner:
    def test_parser_defaults(self):
        args = build_parser().parse_args([])
        assert args.experiment == "headline"
        assert args.instructions == 8000

    def test_registry_contains_all_experiments(self):
        assert {"figure1", "figure2", "figure3", "figure5", "figure6", "figure7",
                "figure8", "figure9", "value_reuse", "headline",
                "ablations"} == set(EXPERIMENTS)

    def test_run_experiments_shares_cache(self):
        results = run_experiments(["figure2"], QUICK)
        assert len(results) == 1
        assert "elapsed_seconds" in results[0].data
