"""Tests of the ablation experiments (reduced scale)."""

import pytest

from repro.experiments import ablations
from repro.experiments.common import ExperimentSettings, SimulationCache

QUICK = ExperimentSettings(instructions_per_benchmark=700, warmup_instructions=200,
                           benchmarks=["m88ksim", "swim"])


@pytest.fixture(scope="module")
def shared_cache() -> SimulationCache:
    return SimulationCache(QUICK)


class TestUpperCapacitySweep:
    def test_larger_upper_level_does_not_hurt(self, shared_cache):
        result = ablations.upper_capacity_sweep(QUICK, shared_cache, capacities=(4, 32))
        for suite in ("SpecInt95", "SpecFP95"):
            series = result.data["series"][suite]
            assert series["32 regs"] >= series["4 regs"] * 0.97
            assert series["1-cycle file"] >= series["32 regs"] * 0.95

    def test_render_contains_capacities(self, shared_cache):
        result = ablations.upper_capacity_sweep(QUICK, shared_cache, capacities=(8, 16))
        assert "8 regs" in result.body and "16 regs" in result.body


class TestCachingPolicySweep:
    def test_all_policies_present(self, shared_cache):
        result = ablations.caching_policy_sweep(QUICK, shared_cache)
        series = result.data["series"]["SpecFP95"]
        assert set(series) == {"non-bypass", "ready", "always", "never"}

    def test_never_caching_is_worst_or_equal(self, shared_cache):
        result = ablations.caching_policy_sweep(QUICK, shared_cache)
        for suite in ("SpecInt95", "SpecFP95"):
            series = result.data["series"][suite]
            best_real = max(series["non-bypass"], series["ready"], series["always"])
            assert series["never"] <= best_real * 1.02


class TestBusCountSweep:
    def test_more_buses_do_not_hurt(self, shared_cache):
        result = ablations.bus_count_sweep(QUICK, shared_cache, bus_counts=(1, 4))
        for suite in ("SpecInt95", "SpecFP95"):
            series = result.data["series"][suite]
            assert series["4 buses"] >= series["1 buses"] * 0.97


class TestOneLevelComparison:
    def test_contains_reference_architectures(self, shared_cache):
        result = ablations.one_level_banked_comparison(QUICK, shared_cache,
                                                       bank_counts=(2,))
        series = result.data["series"]["SpecInt95"]
        assert "one-level, 2 banks" in series
        assert "register file cache" in series
        assert "1-cycle file" in series

    def test_one_level_banked_close_to_one_cycle_with_enough_ports(self, shared_cache):
        result = ablations.one_level_banked_comparison(
            QUICK, shared_cache, bank_counts=(2,),
            read_ports_per_bank=8, write_ports_per_bank=8,
        )
        for suite in ("SpecInt95", "SpecFP95"):
            series = result.data["series"][suite]
            assert series["one-level, 2 banks"] >= series["1-cycle file"] * 0.9


class TestCombinedRun:
    def test_run_concatenates_all_ablations(self, shared_cache):
        result = ablations.run(QUICK, shared_cache)
        assert "upper-level capacity" in result.body
        assert "caching policy" in result.body
        assert "buses" in result.body
        assert "one-level" in result.body
        assert len(result.data) == 4
