"""Tests of the persistent result store, the parallel scheduler and the
machine-readable report formats."""

import json
import pickle

import pytest

from repro.errors import ConfigurationError
from repro.experiments import figure6, figure7
from repro.experiments.common import (
    ExperimentSettings,
    SimulationCache,
    architecture_factories,
    one_cycle_factory,
    register_file_cache_factory,
)
from repro.experiments.runner import main as runner_main
from repro.experiments.runner import render_csv, run_experiments
from repro.experiments.scheduler import (
    SimulationPoint,
    dedupe_points,
    execute_points,
    run_simulation_point,
)
from repro.experiments.store import ResultStore, simulation_key
from repro.pipeline.stats import SimulationStats

#: Tiny budget: these tests exercise plumbing, not simulation fidelity.
TINY = ExperimentSettings(instructions_per_benchmark=300, warmup_instructions=100,
                          benchmarks=["m88ksim", "swim"])


def _point(benchmark="swim", **config_overrides) -> SimulationPoint:
    return SimulationPoint(
        benchmark=benchmark,
        factory=one_cycle_factory(),
        architecture="1-cycle",
        config=TINY.processor_config(**config_overrides),
        warmup_instructions=TINY.warmup_instructions,
    )


class TestStatsSerialization:
    def test_round_trip_preserves_counters(self):
        stats = run_simulation_point(_point(collect_occupancy=True))
        clone = SimulationStats.from_dict(json.loads(json.dumps(stats.to_dict())))
        assert clone == stats
        assert clone.ipc == stats.ipc
        assert clone.occupancy_needed == stats.occupancy_needed
        # Counter keys must come back as integers, not strings.
        assert all(isinstance(key, int) for key in clone.occupancy_needed)

    def test_stats_pickle(self):
        stats = run_simulation_point(_point())
        assert pickle.loads(pickle.dumps(stats)) == stats


class TestResultStore:
    def test_memory_tier_returns_same_object(self):
        store = ResultStore()
        stats = SimulationStats(benchmark="x", cycles=10, committed_instructions=5)
        store.put("key", stats)
        assert store.get("key") is stats
        assert store.counters()["memory_hits"] == 1

    def test_persistent_round_trip(self, tmp_path):
        point = _point()
        stats = run_simulation_point(point)
        writer = ResultStore(cache_dir=str(tmp_path))
        writer.put(point.store_key(), stats, metadata=point.metadata())

        reader = ResultStore(cache_dir=str(tmp_path))
        loaded = reader.get(point.store_key())
        assert loaded is not None
        assert loaded == stats
        assert reader.counters()["disk_hits"] == 1

    def test_corrupt_disk_entry_is_a_miss(self, tmp_path):
        store = ResultStore(cache_dir=str(tmp_path))
        (tmp_path / "deadbeef.json").write_text("{not json")
        assert store.get("deadbeef") is None
        assert store.counters()["misses"] == 1

    def test_cache_hits_across_simulation_cache_instances(self, tmp_path):
        first = SimulationCache(TINY, store=ResultStore(cache_dir=str(tmp_path)))
        before = first.run("swim", one_cycle_factory(), "1-cycle")
        assert first.store.counters()["stores"] == 1

        second = SimulationCache(TINY, store=ResultStore(cache_dir=str(tmp_path)))
        after = second.run("swim", one_cycle_factory(), "1-cycle")
        assert second.store.counters() == {
            "memory_hits": 0, "disk_hits": 1, "misses": 0, "stores": 0, "entries": 1,
        }
        assert after.ipc == before.ipc


class TestCacheKey:
    def test_full_config_is_keyed(self):
        """Configs differing in a field the old tuple key omitted must not
        collide (regression: the old key only looked at 5 config fields)."""
        base = TINY.processor_config()
        for overrides in ({"lsq_size": 8}, {"issue_width": 2},
                          {"fetch_width": 4}, {"max_cycles": 100_000}):
            changed = TINY.processor_config(**overrides)
            assert (
                simulation_key("swim", "1-cycle", base, 100, one_cycle_factory())
                != simulation_key("swim", "1-cycle", changed, 100, one_cycle_factory())
            ), f"key collision for {overrides}"

    def test_differing_configs_simulate_separately(self):
        cache = SimulationCache(TINY)
        narrow = cache.run("swim", one_cycle_factory(), "1-cycle",
                           TINY.processor_config(issue_width=1))
        wide = cache.run("swim", one_cycle_factory(), "1-cycle",
                         TINY.processor_config(issue_width=8))
        assert cache.store.counters()["stores"] == 2
        assert narrow is not wide
        assert narrow.ipc < wide.ipc

    def test_factory_parameters_are_keyed(self):
        config = TINY.processor_config()
        assert (
            simulation_key("swim", "same-label", config, 100,
                           register_file_cache_factory(upper_capacity=8))
            != simulation_key("swim", "same-label", config, 100,
                              register_file_cache_factory(upper_capacity=16))
        )


class TestScheduler:
    def test_factories_are_picklable(self):
        for name, factory in architecture_factories().items():
            rebuilt = pickle.loads(pickle.dumps(factory))
            assert rebuilt == factory, name

    def test_dedupe_across_plans(self):
        points = figure6.plan(TINY) + figure7.plan(TINY)
        unique = dedupe_points(points)
        # figure6 and figure7 share the register-file-cache runs.
        assert len(unique) < len(points)

    def test_execute_points_fills_store(self):
        store = ResultStore()
        summary = execute_points([_point("swim"), _point("swim"), _point("m88ksim")],
                                 store, jobs=1)
        assert summary["requested"] == 3
        assert summary["unique"] == 2
        assert summary["executed"] == 2
        assert len(store) == 2

    def test_plans_cover_their_runs(self):
        """Executing every experiment's plan leaves nothing for run() to
        simulate — guards against plan()/run() enumerations drifting apart
        (which would silently defeat the parallel fan-out)."""
        from repro.experiments.runner import EXPERIMENTS, PLANNERS, plan_experiments

        store = ResultStore()
        execute_points(plan_experiments(list(PLANNERS), TINY), store, jobs=1)
        stores_before = store.counters()["stores"]
        cache = SimulationCache(TINY, store=store)
        for name, experiment in EXPERIMENTS.items():
            experiment(TINY, cache=cache)
            assert store.counters()["stores"] == stores_before, (
                f"{name}.run() simulated points its plan() did not declare"
            )

    def test_parallel_matches_serial(self):
        serial = run_experiments(["figure6"], TINY, store=ResultStore(), jobs=1)
        parallel = run_experiments(["figure6"], TINY, store=ResultStore(), jobs=2)
        for suite in ("SpecInt95", "SpecFP95"):
            assert (json.dumps(serial[0].data[suite], sort_keys=True)
                    == json.dumps(parallel[0].data[suite], sort_keys=True))


class TestSuiteFilter:
    def test_unknown_benchmarks_raise(self):
        settings = ExperimentSettings(benchmarks=["m88ksim", "nosuchbench"])
        with pytest.raises(ConfigurationError, match="nosuchbench"):
            settings.suite("fp")

    def test_empty_filter_raises(self):
        with pytest.raises(ConfigurationError, match="empty"):
            ExperimentSettings(benchmarks=[])

    def test_filter_excluding_whole_suite_raises(self):
        settings = ExperimentSettings(benchmarks=["swim"])  # FP only
        with pytest.raises(ConfigurationError, match="matches no"):
            settings.suite("int")

    def test_valid_filter_still_selects(self):
        settings = ExperimentSettings(benchmarks=["swim", "m88ksim"])
        assert settings.suite("int") == ["m88ksim"]
        assert settings.suite("fp") == ["swim"]
        assert settings.active_suite_labels() == [("int", "SpecInt95"),
                                                  ("fp", "SpecFP95")]

    def test_single_suite_filter_runs_one_suite(self):
        """A valid FP-only filter runs the FP suite instead of failing on
        the empty integer suite."""
        fp_only = ExperimentSettings(instructions_per_benchmark=300,
                                     warmup_instructions=100,
                                     benchmarks=["swim"])
        assert fp_only.active_suite_labels() == [("fp", "SpecFP95")]
        (result,) = run_experiments(["figure2"], fp_only, store=ResultStore())
        assert "SpecFP95" in result.data
        assert "SpecInt95" not in result.data


class TestReportFormats:
    def test_json_report_schema(self, tmp_path, capsys):
        output = tmp_path / "report.json"
        code = runner_main([
            "--experiment", "figure2", "--instructions", "300",
            "--benchmarks", "m88ksim", "swim",
            "--format", "json", "--output", str(output), "--quiet",
        ])
        assert code == 0
        payload = json.loads(output.read_text())
        assert payload["schema"] == 1
        assert payload["settings"]["instructions_per_benchmark"] == 300
        assert payload["settings"]["benchmarks"] == ["m88ksim", "swim"]
        (result,) = payload["results"]
        assert result["name"] == "Figure 2"
        assert set(result) == {"name", "title", "body", "data"}
        assert "SpecInt95" in result["data"]
        # stdout carries the same report
        assert json.loads(capsys.readouterr().out)["schema"] == 1

    def test_csv_report_rows(self):
        results = run_experiments(["figure6"], TINY, store=ResultStore())
        report = render_csv(results)
        lines = report.strip().splitlines()
        assert lines[0] == "experiment,metric,value"
        assert any("SpecInt95.1-cycle.m88ksim" in line for line in lines[1:])

    def test_text_format_unchanged(self, capsys):
        code = runner_main([
            "--experiment", "value_reuse", "--instructions", "300",
            "--benchmarks", "m88ksim", "swim", "--quiet",
        ])
        assert code == 0
        assert "Value reuse" in capsys.readouterr().out
