"""Fixture-drift guard for the golden-stats generator.

``tests/fixtures/make_golden_fixtures.py`` must regenerate the committed
golden JSON byte-for-byte; otherwise the generator has silently diverged
from the fixtures (e.g. a scenario definition edited without
regenerating), and the parity tests would be pinning stale expectations.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

FIXTURE_DIR = Path(__file__).resolve().parent / "fixtures"

sys.path.insert(0, str(FIXTURE_DIR))

from make_golden_fixtures import SCENARIOS, run_scenario  # noqa: E402


def _serialize(payload: dict) -> str:
    """Exactly the bytes the generator writes (sans trailing newline)."""
    return json.dumps(payload, indent=2, sort_keys=True)


def test_generator_reproduces_committed_fixture_byte_identically():
    scenario = "single_banked_1c"
    committed = (FIXTURE_DIR / f"golden_{scenario}.json").read_text(encoding="utf-8")
    regenerated = _serialize(run_scenario(scenario)) + "\n"
    assert regenerated == committed, (
        f"make_golden_fixtures.py no longer reproduces golden_{scenario}.json; "
        "regenerate the fixtures (and review the diff) or revert the "
        "generator change"
    )


def test_every_scenario_has_a_committed_fixture_and_vice_versa():
    expected = {f"golden_{name}.json" for name in SCENARIOS}
    present = {path.name for path in FIXTURE_DIR.glob("golden_*.json")}
    assert expected == present
