"""Unit tests for the branch target buffer."""

import pytest

from repro.errors import ConfigurationError
from repro.frontend.btb import BranchTargetBuffer


class TestBTB:
    def test_construction_validation(self):
        with pytest.raises(ConfigurationError):
            BranchTargetBuffer(num_entries=100)
        with pytest.raises(ConfigurationError):
            BranchTargetBuffer(num_entries=128, associativity=3)

    def test_miss_then_hit(self):
        btb = BranchTargetBuffer(num_entries=64, associativity=4)
        assert btb.lookup(0x1000) is None
        btb.insert(0x1000, 0x2000)
        assert btb.lookup(0x1000) == 0x2000

    def test_update_existing_entry(self):
        btb = BranchTargetBuffer(num_entries=64, associativity=4)
        btb.insert(0x1000, 0x2000)
        btb.insert(0x1000, 0x3000)
        assert btb.lookup(0x1000) == 0x3000

    def test_lru_eviction_within_set(self):
        btb = BranchTargetBuffer(num_entries=8, associativity=2)
        sets = btb.num_sets
        # Three branches mapping to the same set: the oldest is evicted.
        pcs = [0x1000, 0x1000 + 4 * sets, 0x1000 + 8 * sets]
        btb.insert(pcs[0], 1)
        btb.insert(pcs[1], 2)
        btb.insert(pcs[2], 3)
        assert btb.lookup(pcs[0]) is None
        assert btb.lookup(pcs[1]) == 2
        assert btb.lookup(pcs[2]) == 3

    def test_lookup_refreshes_lru(self):
        btb = BranchTargetBuffer(num_entries=8, associativity=2)
        sets = btb.num_sets
        a, b, c = 0x1000, 0x1000 + 4 * sets, 0x1000 + 8 * sets
        btb.insert(a, 1)
        btb.insert(b, 2)
        btb.lookup(a)          # refresh a; b becomes the LRU victim
        btb.insert(c, 3)
        assert btb.lookup(a) == 1
        assert btb.lookup(b) is None

    def test_hit_rate(self):
        btb = BranchTargetBuffer(num_entries=64, associativity=4)
        btb.lookup(0x1000)
        btb.insert(0x1000, 0x2000)
        btb.lookup(0x1000)
        assert btb.hits == 1 and btb.misses == 1
        assert btb.hit_rate == 0.5
