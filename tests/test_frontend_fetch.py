"""Unit tests for the fetch unit."""

from repro.frontend.btb import BranchTargetBuffer
from repro.frontend.fetch import FetchUnit
from repro.frontend.gshare import GSharePredictor
from repro.isa.instruction import DynamicInstruction, INT_LOGICAL_REGISTERS
from repro.isa.opcodes import OpClass
from repro.memsys.cache import CacheConfig, CacheModel


def _alu(seq, pc):
    return DynamicInstruction(seq=seq, op_class=OpClass.INT_ALU,
                              dest=INT_LOGICAL_REGISTERS[1], pc=pc)


def _branch(seq, pc, taken, target=0x5000):
    return DynamicInstruction(seq=seq, op_class=OpClass.BRANCH,
                              pc=pc, branch_taken=taken, branch_target=target)


def _make_fetch(stream, width=8):
    icache = CacheModel(CacheConfig(size_bytes=4096, associativity=2, line_bytes=64,
                                    miss_latency=6, dirty_miss_latency=6, writeback=False))
    return FetchUnit(iter(stream), icache, GSharePredictor(num_entries=1024),
                     BranchTargetBuffer(num_entries=64), width=width)


class TestFetchGrouping:
    def test_fetches_up_to_width(self):
        stream = [_alu(i, 0x1000 + 4 * i) for i in range(20)]
        fetch = _make_fetch(stream, width=8)
        group = fetch.fetch(0)
        # The very first access misses the I-cache (cold), so nothing comes
        # out at cycle 0; after the refill a full group is delivered.
        assert group == []
        resumed = next(cycle for cycle in range(1, 10) if fetch.fetch(cycle))
        group = fetch.fetch(resumed) or fetch.fetch(resumed + 1)
        assert fetch.fetched_instructions >= 8

    def test_stops_at_taken_branch(self):
        stream = [_alu(0, 0x1000), _branch(1, 0x1004, taken=True), _alu(2, 0x5000)]
        fetch = _make_fetch(stream)
        fetch.fetch(0)                      # cold miss
        group = fetch.fetch(10)
        assert [f.seq for f in group] == [0, 1]

    def test_exhaustion(self):
        stream = [_alu(0, 0x1000)]
        fetch = _make_fetch(stream)
        fetch.fetch(0)
        for cycle in range(1, 20):
            fetch.fetch(cycle)
        assert fetch.exhausted

    def test_icache_miss_stalls(self):
        stream = [_alu(i, 0x1000 + 4 * i) for i in range(4)]
        fetch = _make_fetch(stream)
        assert fetch.fetch(0) == []          # compulsory miss
        assert fetch.icache_stall_cycles > 0


class TestBranchHandling:
    def test_mispredicted_branch_blocks_fetch(self):
        # A never-seen branch that is taken: the predictor's initial weakly
        # taken counters predict taken, but the BTB misses; a not-taken
        # prediction on a taken branch (or vice versa) blocks fetch.  Use a
        # branch that is NOT taken while the counters say taken.
        stream = [_branch(0, 0x1000, taken=False), _alu(1, 0x1004), _alu(2, 0x1008)]
        fetch = _make_fetch(stream)
        fetch.fetch(0)
        group = fetch.fetch(10)
        assert len(group) == 1 and group[0].mispredicted
        assert fetch.blocked
        assert fetch.fetch(11) == []
        fetch.branch_resolved(0, 20)
        assert not fetch.blocked
        assert [f.seq for f in fetch.fetch(21)] == [1, 2]

    def test_correctly_predicted_branch_does_not_block(self):
        # Initial 2-bit counters are weakly taken, so a taken branch is
        # predicted correctly; only the BTB-miss bubble applies.
        stream = [_branch(0, 0x1000, taken=True), _alu(1, 0x5000), _alu(2, 0x5004)]
        fetch = _make_fetch(stream)
        fetch.fetch(0)
        group = fetch.fetch(10)
        assert group and not group[0].mispredicted
        assert not fetch.blocked

    def test_branch_resolved_ignores_older_seq(self):
        stream = [_branch(0, 0x1000, taken=False), _alu(1, 0x1004)]
        fetch = _make_fetch(stream)
        fetch.fetch(0)
        fetch.fetch(10)
        assert fetch.blocked
        fetch.branch_resolved(-5, 12)   # unrelated older branch
        assert fetch.blocked

    def test_block_on_branch_keeps_oldest(self):
        fetch = _make_fetch([])
        fetch.block_on_branch(10)
        fetch.block_on_branch(20)
        fetch.branch_resolved(10, 5)
        assert not fetch.blocked
