"""Unit tests for the gshare branch predictor."""

import pytest

from repro.errors import ConfigurationError
from repro.frontend.gshare import GSharePredictor


class TestConstruction:
    def test_power_of_two_required(self):
        with pytest.raises(ConfigurationError):
            GSharePredictor(num_entries=1000)

    def test_negative_history_rejected(self):
        with pytest.raises(ConfigurationError):
            GSharePredictor(num_entries=1024, history_bits=-1)

    def test_default_table_size_matches_paper(self):
        predictor = GSharePredictor()
        assert predictor.num_entries == 64 * 1024


class TestPrediction:
    def test_learns_always_taken_branch(self):
        predictor = GSharePredictor(num_entries=1024)
        pc = 0x4000
        for _ in range(50):
            predicted, checkpoint = predictor.predict(pc)
            predictor.update(pc, True, checkpoint, predicted)
        predicted, _ = predictor.predict(pc)
        assert predicted is True

    def test_learns_never_taken_branch(self):
        predictor = GSharePredictor(num_entries=1024)
        pc = 0x4000
        for _ in range(50):
            predicted, checkpoint = predictor.predict(pc)
            predictor.update(pc, False, checkpoint, predicted)
        predicted, _ = predictor.predict(pc)
        assert predicted is False

    def test_learns_alternating_pattern_through_history(self):
        predictor = GSharePredictor(num_entries=4096, history_bits=8)
        pc = 0x1234
        outcomes = [True, False] * 200
        mispredictions = 0
        for outcome in outcomes:
            predicted, checkpoint = predictor.predict(pc)
            if predicted != outcome:
                mispredictions += 1
            predictor.update(pc, outcome, checkpoint, predicted)
        # After warm-up the alternating pattern is captured by the history.
        assert mispredictions < len(outcomes) * 0.2

    def test_accuracy_statistics(self):
        predictor = GSharePredictor(num_entries=256)
        pc = 0x10
        for _ in range(20):
            predicted, checkpoint = predictor.predict(pc)
            predictor.update(pc, True, checkpoint, predicted)
        assert predictor.predictions == 20
        assert 0.0 <= predictor.accuracy <= 1.0

    def test_reset_statistics(self):
        predictor = GSharePredictor(num_entries=256)
        predicted, checkpoint = predictor.predict(0)
        predictor.update(0, True, checkpoint, predicted)
        predictor.reset_statistics()
        assert predictor.predictions == 0
        assert predictor.accuracy == 1.0

    def test_history_repair_on_misprediction(self):
        predictor = GSharePredictor(num_entries=256, history_bits=4)
        predicted, checkpoint = predictor.predict(0x40)
        # Force the opposite outcome; history must contain the real outcome.
        actual = not predicted
        predictor.update(0x40, actual, checkpoint, predicted)
        expected_history = ((checkpoint << 1) | int(actual)) & 0xF
        assert predictor._history == expected_history
