"""Unit tests for the area / access-time models and the Table 2 geometry."""

import pytest

from repro.errors import ModelError
from repro.hwmodel.access_time import access_time_ns, calibration_error
from repro.hwmodel.area import AREA_UNIT, RegisterFileGeometry, area_lambda2
from repro.hwmodel.configurations import (
    PAPER_TABLE2,
    RegisterFileCacheGeometry,
    TABLE2_CONFIGURATIONS,
)
from repro.hwmodel.pareto import (
    DesignPoint,
    enumerate_register_file_cache,
    enumerate_single_banked,
    pareto_frontier,
)


class TestAreaModel:
    def test_area_grows_with_ports_and_registers(self):
        small = area_lambda2(64, 2, 2)
        more_ports = area_lambda2(64, 4, 4)
        more_registers = area_lambda2(128, 2, 2)
        assert more_ports > small
        assert more_registers == pytest.approx(2 * small)

    def test_quadratic_port_dependence(self):
        base = RegisterFileGeometry(128, 2, 2)
        doubled = RegisterFileGeometry(128, 6, 2)
        assert doubled.area_lambda2() / base.area_lambda2() == pytest.approx(
            (doubled.cell_side_lambda / base.cell_side_lambda) ** 2
        )

    def test_validation(self):
        with pytest.raises(ModelError):
            RegisterFileGeometry(0, 2, 2)
        with pytest.raises(ModelError):
            RegisterFileGeometry(128, 0, 0)
        with pytest.raises(ModelError):
            RegisterFileGeometry(128, -1, 2)

    @pytest.mark.parametrize("config_name,ports", [
        ("C1", (3, 2)), ("C2", (3, 3)), ("C3", (4, 3)), ("C4", (4, 4)),
    ])
    def test_single_banked_areas_match_paper_within_10_percent(self, config_name, ports):
        reads, writes = ports
        area_units = RegisterFileGeometry(128, reads, writes).area_units()
        paper_area = PAPER_TABLE2[config_name]["one-cycle"][0]
        assert area_units == pytest.approx(paper_area, rel=0.10)

    def test_cache_areas_match_paper_within_15_percent(self):
        for configuration in TABLE2_CONFIGURATIONS:
            paper_area = PAPER_TABLE2[configuration.name]["cache"][0]
            assert configuration.cache_geometry.area_units() == pytest.approx(
                paper_area, rel=0.15
            )


class TestAccessTimeModel:
    def test_calibration_error_is_small(self):
        assert calibration_error() < 0.05

    def test_access_time_grows_with_ports(self):
        assert access_time_ns(128, 4, 4) > access_time_ns(128, 3, 2)

    def test_access_time_grows_with_registers(self):
        assert access_time_ns(128, 3, 2) > access_time_ns(16, 3, 2)

    def test_paper_values_reproduced(self):
        assert access_time_ns(128, 3, 2) == pytest.approx(4.71, rel=0.05)
        assert access_time_ns(128, 4, 4) == pytest.approx(5.48, rel=0.05)
        assert access_time_ns(16, 3, 4) == pytest.approx(2.45, rel=0.08)

    def test_validation(self):
        with pytest.raises(ModelError):
            access_time_ns(0, 2, 2)
        with pytest.raises(ModelError):
            access_time_ns(128, 0, 0)

    def test_result_is_positive_even_when_extrapolating(self):
        assert access_time_ns(1, 1, 1) > 0


class TestCacheGeometry:
    def test_buses_add_ports(self):
        geometry = RegisterFileCacheGeometry(upper_read_ports=3, upper_write_ports=2,
                                             lower_write_ports=2, buses=2)
        assert geometry.upper_bank.write_ports == 4
        assert geometry.lower_bank.read_ports == 2

    def test_cycle_time_set_by_upper_bank(self):
        geometry = RegisterFileCacheGeometry()
        assert geometry.cycle_time_ns() < geometry.lower_access_time_ns()

    def test_lower_read_latency_at_least_one(self):
        geometry = RegisterFileCacheGeometry()
        assert geometry.lower_read_latency_cycles() >= 1

    def test_cache_cycle_time_close_to_paper(self):
        for configuration in TABLE2_CONFIGURATIONS:
            paper_cycle = PAPER_TABLE2[configuration.name]["cache"][1]
            assert configuration.cache_geometry.cycle_time_ns() == pytest.approx(
                paper_cycle, rel=0.08
            )

    def test_area_unit_constant(self):
        assert AREA_UNIT == 10_000.0

    def test_table2_has_four_configurations(self):
        assert [c.name for c in TABLE2_CONFIGURATIONS] == ["C1", "C2", "C3", "C4"]


class TestPareto:
    def test_dominated_points_removed(self):
        points = [
            DesignPoint(cost=10, value=1.0, label="a"),
            DesignPoint(cost=12, value=0.9, label="dominated"),
            DesignPoint(cost=15, value=1.2, label="b"),
        ]
        frontier = pareto_frontier(points)
        assert [p.label for p in frontier] == ["a", "b"]

    def test_equal_cost_keeps_best_value(self):
        points = [DesignPoint(10, 1.0, "low"), DesignPoint(10, 2.0, "high")]
        frontier = pareto_frontier(points)
        assert [p.label for p in frontier] == ["high"]

    def test_exact_ties_are_all_kept(self):
        # Distinct designs landing on the same (cost, value) spot are
        # equally optimal; none of them may be arbitrarily dropped.
        points = [
            DesignPoint(10, 1.0, "tie-a"),
            DesignPoint(10, 1.0, "tie-b"),
            DesignPoint(12, 1.0, "worse-cost-same-value"),
            DesignPoint(15, 1.2, "b"),
        ]
        frontier = pareto_frontier(points)
        assert [p.label for p in frontier] == ["tie-a", "tie-b", "b"]

    def test_empty_input(self):
        assert pareto_frontier([]) == []

    def test_enumerations(self):
        singles = enumerate_single_banked(read_port_range=(2, 3), write_port_range=(1,))
        assert len(singles) == 2
        caches = enumerate_register_file_cache(
            upper_read_range=(2,), upper_write_range=(2,),
            lower_write_range=(2,), bus_range=(1, 2),
        )
        assert len(caches) == 2
