"""Unit tests for the assembler and the static program executor."""

import pytest

from repro.errors import AssemblyError
from repro.isa.assembler import assemble
from repro.isa.instruction import RegisterClass
from repro.isa.opcodes import OpClass
from repro.isa.program import register_class_mix, registers_touched


class TestAssembler:
    def test_simple_program(self):
        program = assemble("""
            li r1, 5
            li r2, 7
            add r3, r1, r2
        """)
        assert len(program) == 3
        assert program.instructions[2].opcode.mnemonic == "add"

    def test_labels_and_branches(self):
        program = assemble("""
            li r1, 3
            li r2, 0
        loop:
            addi r1, r1, -1
            bne r1, r2, loop
        """)
        assert len(program) == 4
        assert program.label_address("loop") == program.base_pc + 2 * 4

    def test_comments_and_blank_lines_ignored(self):
        program = assemble("""
            # leading comment

            li r1, 1   # trailing comment
        """)
        assert len(program) == 1

    def test_unknown_mnemonic(self):
        with pytest.raises(AssemblyError):
            assemble("bogus r1, r2, r3")

    def test_undefined_label(self):
        with pytest.raises(AssemblyError):
            assemble("jmp nowhere")

    def test_duplicate_label(self):
        with pytest.raises(AssemblyError):
            assemble("""
            a:
                li r1, 1
            a:
                li r2, 2
            """)

    def test_wrong_operand_count(self):
        with pytest.raises(AssemblyError):
            assemble("add r1, r2")

    def test_branch_without_target(self):
        with pytest.raises(AssemblyError):
            assemble("beq r1, r2")

    def test_bad_register_name(self):
        with pytest.raises(AssemblyError):
            assemble("add r1, r2, x3")

    def test_register_out_of_range(self):
        with pytest.raises(AssemblyError):
            assemble("add r1, r2, r99")

    def test_empty_program_rejected(self):
        with pytest.raises(AssemblyError):
            assemble("# nothing here")

    def test_fp_registers(self):
        program = assemble("fadd f1, f2, f3")
        inst = program.instructions[0]
        assert inst.dest.reg_class is RegisterClass.FP
        assert all(s.reg_class is RegisterClass.FP for s in inst.sources)


class TestProgramExecution:
    def test_loop_executes_expected_count(self):
        program = assemble("""
            li r1, 4
            li r2, 0
        loop:
            addi r1, r1, -1
            bne r1, r2, loop
        """)
        dynamic = list(program.run())
        # 2 setup + 4 iterations of (addi, bne)
        assert len(dynamic) == 2 + 4 * 2
        branches = [d for d in dynamic if d.is_branch]
        assert [b.branch_taken for b in branches] == [True, True, True, False]

    def test_memory_round_trip(self):
        program = assemble("""
            li r1, 0x2000
            li r2, 42
            sw r2, r1, 0
            lw r3, r1, 0
            sw r3, r1, 8
        """)
        dynamic = list(program.run())
        loads = [d for d in dynamic if d.op_class is OpClass.LOAD]
        stores = [d for d in dynamic if d.op_class is OpClass.STORE]
        assert len(loads) == 1 and len(stores) == 2
        assert loads[0].mem_address == 0x2000
        assert stores[1].mem_address == 0x2008

    def test_max_instructions_bounds_execution(self):
        program = assemble("""
        forever:
            addi r1, r1, 1
            jmp forever
        """)
        dynamic = list(program.run(max_instructions=50))
        assert len(dynamic) == 50

    def test_pc_progression(self):
        program = assemble("""
            li r1, 1
            li r2, 2
        """)
        dynamic = list(program.run())
        assert dynamic[1].pc == dynamic[0].pc + 4

    def test_registers_touched_helper(self):
        program = assemble("add r3, r1, r2")
        touched = registers_touched(program)
        assert len(touched) == 3

    def test_register_class_mix_helper(self):
        program = assemble("""
            add r3, r1, r2
            fadd f3, f1, f2
        """)
        mix = register_class_mix(program)
        assert mix[RegisterClass.INT] == 1
        assert mix[RegisterClass.FP] == 1
