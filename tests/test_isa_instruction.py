"""Unit tests for repro.isa.instruction."""

import pytest

from repro.isa.instruction import (
    DynamicInstruction,
    FP_LOGICAL_REGISTERS,
    INT_LOGICAL_REGISTERS,
    LogicalRegister,
    RegisterClass,
    StaticInstruction,
)
from repro.isa.opcodes import OPCODES, OpClass


class TestLogicalRegister:
    def test_register_pools_have_32_entries(self):
        assert len(INT_LOGICAL_REGISTERS) == 32
        assert len(FP_LOGICAL_REGISTERS) == 32

    def test_out_of_range_index_rejected(self):
        with pytest.raises(ValueError):
            LogicalRegister(RegisterClass.INT, 32)
        with pytest.raises(ValueError):
            LogicalRegister(RegisterClass.FP, -1)

    def test_str_representation(self):
        assert str(LogicalRegister(RegisterClass.INT, 5)) == "r5"
        assert str(LogicalRegister(RegisterClass.FP, 7)) == "f7"

    def test_equality_and_hash(self):
        a = LogicalRegister(RegisterClass.INT, 3)
        b = LogicalRegister(RegisterClass.INT, 3)
        assert a == b
        assert hash(a) == hash(b)
        assert a != LogicalRegister(RegisterClass.FP, 3)


class TestStaticInstruction:
    def test_requires_destination_when_opcode_has_one(self):
        with pytest.raises(ValueError):
            StaticInstruction(opcode=OPCODES["add"], dest=None,
                              sources=(INT_LOGICAL_REGISTERS[1], INT_LOGICAL_REGISTERS[2]))

    def test_rejects_destination_when_opcode_has_none(self):
        with pytest.raises(ValueError):
            StaticInstruction(opcode=OPCODES["sw"], dest=INT_LOGICAL_REGISTERS[1],
                              sources=(INT_LOGICAL_REGISTERS[1], INT_LOGICAL_REGISTERS[2]))

    def test_source_count_must_match_opcode(self):
        with pytest.raises(ValueError):
            StaticInstruction(opcode=OPCODES["add"], dest=INT_LOGICAL_REGISTERS[1],
                              sources=(INT_LOGICAL_REGISTERS[2],))

    def test_str_contains_mnemonic(self):
        inst = StaticInstruction(opcode=OPCODES["add"], dest=INT_LOGICAL_REGISTERS[1],
                                 sources=(INT_LOGICAL_REGISTERS[2], INT_LOGICAL_REGISTERS[3]))
        assert "add" in str(inst)


class TestDynamicInstruction:
    def test_default_latency_from_class(self):
        inst = DynamicInstruction(seq=0, op_class=OpClass.FP_ALU,
                                  dest=FP_LOGICAL_REGISTERS[1])
        assert inst.latency == 2

    def test_branch_flag_set_from_class(self):
        inst = DynamicInstruction(seq=0, op_class=OpClass.BRANCH, branch_taken=True)
        assert inst.is_branch

    def test_memory_instruction_gets_default_address(self):
        inst = DynamicInstruction(seq=0, op_class=OpClass.LOAD,
                                  dest=INT_LOGICAL_REGISTERS[1],
                                  sources=(INT_LOGICAL_REGISTERS[2],))
        assert inst.mem_address == 0
        assert inst.is_load and not inst.is_store

    def test_next_pc_taken_branch(self):
        inst = DynamicInstruction(seq=0, op_class=OpClass.BRANCH, pc=0x1000,
                                  branch_taken=True, branch_target=0x2000)
        assert inst.next_pc == 0x2000

    def test_next_pc_not_taken_branch(self):
        inst = DynamicInstruction(seq=0, op_class=OpClass.BRANCH, pc=0x1000,
                                  branch_taken=False, branch_target=0x2000)
        assert inst.next_pc == 0x1004

    def test_writes_register_property(self):
        store = DynamicInstruction(seq=0, op_class=OpClass.STORE,
                                   sources=(INT_LOGICAL_REGISTERS[1], INT_LOGICAL_REGISTERS[2]))
        assert not store.writes_register
        alu = DynamicInstruction(seq=1, op_class=OpClass.INT_ALU,
                                 dest=INT_LOGICAL_REGISTERS[3])
        assert alu.writes_register
