"""Unit tests for repro.isa.opcodes."""

import pytest

from repro.isa.opcodes import (
    OPCODES,
    DEFAULT_LATENCIES,
    OpClass,
    Opcode,
    default_latency,
    opcode_by_mnemonic,
)


class TestOpClass:
    def test_memory_classes(self):
        assert OpClass.LOAD.is_memory
        assert OpClass.STORE.is_memory
        assert not OpClass.INT_ALU.is_memory

    def test_branch_class(self):
        assert OpClass.BRANCH.is_branch
        assert not OpClass.LOAD.is_branch

    def test_fp_classes(self):
        assert OpClass.FP_ALU.is_fp
        assert OpClass.FP_MUL.is_fp
        assert OpClass.FP_DIV.is_fp
        assert not OpClass.INT_MUL.is_fp

    def test_writes_register(self):
        assert OpClass.INT_ALU.writes_register
        assert OpClass.LOAD.writes_register
        assert not OpClass.STORE.writes_register
        assert not OpClass.BRANCH.writes_register
        assert not OpClass.NOP.writes_register


class TestLatencies:
    def test_every_class_has_a_latency(self):
        for op_class in OpClass:
            assert default_latency(op_class) >= 1

    def test_table1_latencies(self):
        """Latencies follow Table 1 of the paper."""
        assert default_latency(OpClass.INT_ALU) == 1
        assert default_latency(OpClass.INT_MUL) == 2
        assert default_latency(OpClass.INT_DIV) == 14
        assert default_latency(OpClass.FP_ALU) == 2
        assert default_latency(OpClass.FP_DIV) == 14

    def test_latency_table_is_complete(self):
        assert set(DEFAULT_LATENCIES) == set(OpClass)


class TestOpcodes:
    def test_lookup_by_mnemonic(self):
        add = opcode_by_mnemonic("add")
        assert add.op_class is OpClass.INT_ALU
        assert add.num_sources == 2
        assert add.has_dest

    def test_unknown_mnemonic_raises(self):
        with pytest.raises(KeyError):
            opcode_by_mnemonic("frobnicate")

    def test_store_has_no_destination(self):
        assert not OPCODES["sw"].has_dest
        assert OPCODES["sw"].num_sources == 2

    def test_load_has_one_source(self):
        assert OPCODES["lw"].num_sources == 1
        assert OPCODES["lw"].has_dest

    def test_branches_have_no_destination(self):
        for mnemonic in ("beq", "bne", "blt", "bge", "jmp"):
            assert not OPCODES[mnemonic].has_dest

    def test_invalid_source_count_rejected(self):
        with pytest.raises(ValueError):
            Opcode("bogus", OpClass.INT_ALU, num_sources=3)

    def test_mnemonics_are_unique_keys(self):
        assert len(OPCODES) == len({op.mnemonic for op in OPCODES.values()})
