"""Unit tests for the cache timing model."""

import pytest

from repro.errors import ConfigurationError
from repro.memsys.cache import AccessResult, CacheConfig, CacheModel


class TestCacheConfig:
    def test_table1_defaults(self):
        config = CacheConfig()
        assert config.size_bytes == 64 * 1024
        assert config.associativity == 2
        assert config.line_bytes == 64
        assert config.num_sets == 512

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            CacheConfig(size_bytes=0)
        with pytest.raises(ConfigurationError):
            CacheConfig(size_bytes=1000, line_bytes=64, associativity=2)
        with pytest.raises(ConfigurationError):
            CacheConfig(hit_latency=2, miss_latency=1)


class TestCacheBehaviour:
    def test_cold_miss_then_hit(self):
        cache = CacheModel(CacheConfig())
        first = cache.access(0x1000)
        second = cache.access(0x1000)
        assert not first.hit and first.latency == 6
        assert second.hit and second.latency == 1

    def test_same_line_hits(self):
        cache = CacheModel(CacheConfig())
        cache.access(0x1000)
        assert cache.access(0x103F).hit      # same 64-byte line
        assert not cache.access(0x1040).hit  # next line

    def test_lru_within_set(self):
        config = CacheConfig(size_bytes=256, associativity=2, line_bytes=64,
                             writeback=False, dirty_miss_latency=6)
        cache = CacheModel(config)          # 2 sets
        stride = config.num_sets * config.line_bytes
        a, b, c = 0x0, stride, 2 * stride   # all map to set 0
        cache.access(a)
        cache.access(b)
        cache.access(a)                     # refresh a
        cache.access(c)                     # evicts b
        assert cache.probe(a)
        assert not cache.probe(b)
        assert cache.probe(c)

    def test_dirty_eviction_costs_more(self):
        config = CacheConfig(size_bytes=256, associativity=1, line_bytes=64,
                             miss_latency=6, dirty_miss_latency=8)
        cache = CacheModel(config)
        stride = config.num_sets * config.line_bytes
        cache.access(0x0, is_write=True)            # dirty line
        result = cache.access(stride)               # evicts the dirty line
        assert isinstance(result, AccessResult)
        assert not result.hit
        assert result.latency == 8
        assert result.writeback
        assert cache.writebacks == 1

    def test_write_through_never_dirty(self):
        config = CacheConfig(size_bytes=256, associativity=1, line_bytes=64,
                             writeback=False, dirty_miss_latency=8)
        cache = CacheModel(config)
        stride = config.num_sets * config.line_bytes
        cache.access(0x0, is_write=True)
        result = cache.access(stride)
        assert result.latency == 6 and not result.writeback

    def test_hit_rate_statistics(self):
        cache = CacheModel(CacheConfig())
        cache.access(0x0)
        cache.access(0x0)
        cache.access(0x0)
        assert cache.hits == 2 and cache.misses == 1
        assert cache.hit_rate == pytest.approx(2 / 3)
        cache.reset_statistics()
        assert cache.hit_rate == 1.0

    def test_probe_does_not_change_state(self):
        cache = CacheModel(CacheConfig())
        assert not cache.probe(0x2000)
        assert cache.misses == 0

    def test_mshr_tracking(self):
        config = CacheConfig(max_outstanding_misses=2)
        cache = CacheModel(config)
        assert cache.can_issue_miss()
        cache.miss_issued()
        cache.miss_issued()
        assert not cache.can_issue_miss()
        cache.miss_completed()
        assert cache.can_issue_miss()
        assert cache.outstanding_misses == 1
