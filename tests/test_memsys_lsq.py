"""Unit tests for the load/store queue."""

import pytest

from repro.errors import ConfigurationError, SimulationError
from repro.memsys.lsq import LoadStoreQueue


class TestLSQBasics:
    def test_capacity_validation(self):
        with pytest.raises(ConfigurationError):
            LoadStoreQueue(capacity=0)

    def test_insert_and_full(self):
        lsq = LoadStoreQueue(capacity=2)
        lsq.insert(0, is_store=False)
        lsq.insert(1, is_store=True)
        assert lsq.full
        with pytest.raises(SimulationError):
            lsq.insert(2, is_store=False)

    def test_program_order_enforced(self):
        lsq = LoadStoreQueue()
        lsq.insert(5, is_store=False)
        with pytest.raises(SimulationError):
            lsq.insert(3, is_store=True)

    def test_release_and_occupancy(self):
        lsq = LoadStoreQueue()
        lsq.insert(0, is_store=True)
        lsq.insert(1, is_store=False)
        assert lsq.occupancy() == 2
        lsq.release(0)
        assert lsq.occupancy() == 1
        lsq.release(12345)   # unknown seq is a no-op
        assert lsq.occupancy() == 1


class TestOrderingRules:
    def test_load_blocked_by_unknown_store_address(self):
        lsq = LoadStoreQueue()
        lsq.insert(0, is_store=True)
        lsq.insert(1, is_store=False)
        assert not lsq.load_may_issue(1)
        lsq.set_address(0, 0x100)
        assert lsq.load_may_issue(1)

    def test_load_not_blocked_by_younger_store(self):
        lsq = LoadStoreQueue()
        lsq.insert(0, is_store=False)
        lsq.insert(1, is_store=True)
        assert lsq.load_may_issue(0)

    def test_set_address_unknown_entry(self):
        lsq = LoadStoreQueue()
        with pytest.raises(SimulationError):
            lsq.set_address(7, 0x100)


class TestForwarding:
    def test_forwarding_from_matching_store(self):
        lsq = LoadStoreQueue()
        lsq.insert(0, is_store=True)
        lsq.set_address(0, 0x200)
        lsq.insert(1, is_store=False)
        assert lsq.forwarding_store(1, 0x200) == 0
        assert lsq.forwarded_loads == 1

    def test_no_forwarding_from_different_address(self):
        lsq = LoadStoreQueue()
        lsq.insert(0, is_store=True)
        lsq.set_address(0, 0x200)
        lsq.insert(1, is_store=False)
        assert lsq.forwarding_store(1, 0x300) is None

    def test_youngest_older_store_wins(self):
        lsq = LoadStoreQueue()
        lsq.insert(0, is_store=True)
        lsq.set_address(0, 0x200)
        lsq.insert(1, is_store=True)
        lsq.set_address(1, 0x200)
        lsq.insert(2, is_store=False)
        assert lsq.forwarding_store(2, 0x200) == 1

    def test_no_forwarding_from_younger_store(self):
        lsq = LoadStoreQueue()
        lsq.insert(0, is_store=False)
        lsq.insert(1, is_store=True)
        lsq.set_address(1, 0x200)
        assert lsq.forwarding_store(0, 0x200) is None


class TestFlush:
    def test_flush_after_drops_younger_entries(self):
        lsq = LoadStoreQueue()
        for seq in range(4):
            lsq.insert(seq, is_store=seq % 2 == 0)
        lsq.flush_after(1)
        assert lsq.occupancy() == 2
        lsq.clear()
        assert lsq.occupancy() == 0
