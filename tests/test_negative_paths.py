"""Negative-path tests: unknown suites/benchmarks must fail loudly.

A typo in a benchmark filter or suite name must surface as a library
error (:class:`ConfigurationError` / :class:`WorkloadError`) carrying
the offending name — and reach the user through the CLI with exit code
2, never as a silent fallback or a bare traceback.
"""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError, WorkloadError
from repro.experiments.common import ExperimentSettings
from repro.experiments.runner import main as runner_main
from repro.workloads.profiles import get_profile
from repro.workloads.spec_suites import suite_for, suite_members


class TestLibraryErrors:
    def test_suite_for_unknown_benchmark_names_it(self):
        with pytest.raises(WorkloadError, match="'doom3'"):
            suite_for("doom3")

    def test_suite_members_unknown_suite_names_it(self):
        with pytest.raises(WorkloadError, match="'web'"):
            suite_members("web")

    def test_get_profile_unknown_benchmark_names_it(self):
        with pytest.raises(WorkloadError, match="'nosuchbench'"):
            get_profile("nosuchbench")

    def test_settings_unknown_benchmark_filter_names_it(self):
        settings = ExperimentSettings(benchmarks=["gcc", "nosuchbench"])
        with pytest.raises(ConfigurationError, match="nosuchbench"):
            settings.suite("int")

    def test_settings_empty_filter_rejected_at_construction(self):
        with pytest.raises(ConfigurationError, match="empty"):
            ExperimentSettings(benchmarks=[])

    def test_settings_filter_excluding_a_whole_suite(self):
        settings = ExperimentSettings(benchmarks=["swim"])
        with pytest.raises(ConfigurationError, match="matches"):
            settings.suite("int")
        # ... but the suite *selection* API reports it as simply empty.
        assert list(settings.suite_selection("int")) == []


class TestRunnerCli:
    def test_unknown_benchmark_filter_exits_two_and_names_it(self, capsys):
        code = runner_main([
            "--experiment", "figure6", "--benchmarks", "nosuchbench",
            "--instructions", "50", "--quiet",
        ])
        assert code == 2
        err = capsys.readouterr().err
        assert "nosuchbench" in err
        assert err.startswith("error:")

    def test_empty_benchmark_filter_exits_two(self, capsys):
        code = runner_main(["--experiment", "figure6", "--benchmarks", "--quiet"])
        assert code == 2
        assert "empty" in capsys.readouterr().err

    def test_mixed_known_and_unknown_filter_still_fails(self, capsys):
        code = runner_main([
            "--experiment", "figure6", "--benchmarks", "gcc", "wave5x",
            "--instructions", "50", "--quiet",
        ])
        assert code == 2
        assert "wave5x" in capsys.readouterr().err
