"""Event log rotation/resume, the merged reader, and the SSE ring.

The on-disk log is the lossless record (bounded by rotation), the
in-memory bus is the live feed; both identify events by the per-writer
``seq``.  These tests pin the rotation bound, the cross-restart seq
resume (SSE cursors must not rewind), torn-tail tolerance in the
reader, and the ``since``-cursor semantics of :class:`EventBus`.
"""

from __future__ import annotations

import os

import pytest

from repro.obs.events import (
    EVENT_SCHEMA_VERSION,
    EventBus,
    EventLog,
    read_events,
    span_pairs,
    unfinished_spans,
)


class TestEventLog:
    def test_events_are_stamped_and_sequenced(self, tmp_path):
        log = EventLog(str(tmp_path), source="svc")
        first = log.append({"kind": "a"})
        second = log.append({"kind": "b"})
        assert first["schema"] == EVENT_SCHEMA_VERSION
        assert first["source"] == "svc"
        assert (first["seq"], second["seq"]) == (1, 2)

    def test_rotation_bounds_the_series(self, tmp_path):
        log = EventLog(str(tmp_path), source="svc",
                       max_bytes=200, max_files=3)
        for index in range(200):
            log.append({"kind": "tick", "index": index})
        files = [n for n in os.listdir(tmp_path) if n.endswith(".jsonl")]
        assert 1 <= len(files) <= 3
        # The survivors are the *newest* files of the series.
        indices = sorted(int(n.split("-")[-1].split(".")[0]) for n in files)
        assert indices == sorted(indices)[-len(indices):]
        # Events in the surviving files are the newest events.
        events = read_events(str(tmp_path))
        assert events[-1]["index"] == 199

    def test_seq_resumes_across_restart(self, tmp_path):
        log = EventLog(str(tmp_path), source="svc")
        log.append({"kind": "a"})
        log.append({"kind": "b"})
        log.close()
        reopened = EventLog(str(tmp_path), source="svc")
        third = reopened.append({"kind": "c"})
        assert third["seq"] == 3  # cursor never rewinds

    def test_write_errors_are_absorbed(self, tmp_path):
        # Writer whose file path collides with a directory: the append
        # fails, nothing raises — telemetry must never take the service
        # down.
        log = EventLog(str(tmp_path), source="svc")
        (tmp_path / "svc-0001.jsonl").mkdir()
        assert log.append({"kind": "a"}) is None
        assert log.write_errors >= 1

    def test_rejects_nonpositive_bounds(self, tmp_path):
        with pytest.raises(ValueError):
            EventLog(str(tmp_path), source="svc", max_bytes=0)
        with pytest.raises(ValueError):
            EventLog(str(tmp_path), source="svc", max_files=0)


class TestReadEvents:
    def test_merges_writers_and_skips_garbage(self, tmp_path):
        clock = {"now": 100.0}
        a = EventLog(str(tmp_path), source="a", clock=lambda: clock["now"])
        b = EventLog(str(tmp_path), source="b", clock=lambda: clock["now"])
        a.append({"kind": "one"})
        clock["now"] = 101.0
        b.append({"kind": "two"})
        clock["now"] = 102.0
        a.append({"kind": "three"})
        # A torn tail and a foreign-schema line must both be skipped.
        with open(tmp_path / "a-0001.jsonl", "a", encoding="utf-8") as handle:
            handle.write('{"kind": "torn...\n')
            handle.write('{"schema": 999, "kind": "foreign"}\n')
        events = read_events(str(tmp_path))
        assert [e["kind"] for e in events] == ["one", "two", "three"]

    def test_missing_directory_is_empty_not_fatal(self, tmp_path):
        assert read_events(str(tmp_path / "absent")) == []


class TestEventBus:
    def test_since_cursor(self):
        bus = EventBus()
        for seq in (1, 2, 3):
            bus.publish({"seq": seq})
        assert [e["seq"] for e in bus.since(0)] == [1, 2, 3]
        assert [e["seq"] for e in bus.since(2)] == [3]
        assert bus.since(3) == []
        assert bus.last_seq == 3

    def test_overflow_resumes_from_oldest_buffered(self):
        bus = EventBus(capacity=3)
        for seq in range(1, 11):
            bus.publish({"seq": seq})
        # A subscriber far behind gets what the ring still holds.
        assert [e["seq"] for e in bus.since(0)] == [8, 9, 10]

    def test_wait_returns_immediately_when_newer_exists(self):
        bus = EventBus()
        bus.publish({"seq": 1})
        assert [e["seq"] for e in bus.wait(0, timeout=5.0)] == [1]

    def test_wait_times_out_empty(self):
        bus = EventBus()
        assert bus.wait(0, timeout=0.05) == []


class TestSpanAccounting:
    def test_unfinished_spans(self):
        events = [
            {"kind": "span_start", "span": "a", "span_id": "s1"},
            {"kind": "span_end", "span": "a", "span_id": "s1"},
            {"kind": "span_start", "span": "b", "span_id": "s2"},
            {"kind": "job_phase", "phase": "queued"},
        ]
        starts, ends = span_pairs(events)
        assert set(starts) == {"s1", "s2"}
        assert set(ends) == {"s1"}
        dangling = unfinished_spans(events)
        assert [s["span_id"] for s in dangling] == ["s2"]
