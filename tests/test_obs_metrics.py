"""Histogram bucket math, merge exactness, and the sliding rate window.

The fleet view is built by *merging* per-replica histogram snapshots,
so the whole design rests on one property: because every histogram of a
given name shares fixed bucket bounds, a merge of shard histograms is
**exactly** the histogram of the concatenated samples.  That property
is hypothesis-tested here; the rest pins the bucket edge semantics
(``le`` is inclusive), the payload validation, and the
:class:`RateWindow` elapsed-clamp maths.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    RateWindow,
)


class TestCounterGauge:
    def test_counter_only_goes_up(self):
        counter = Counter("c")
        counter.inc()
        counter.inc(2.5)
        assert counter.value == 3.5
        assert counter.int_value == 4  # rounded, not truncated
        with pytest.raises(ValueError):
            counter.inc(-1)

    def test_gauge_goes_both_ways(self):
        gauge = Gauge("g")
        gauge.set(5)
        gauge.inc()
        gauge.dec(2)
        assert gauge.value == 4.0


class TestHistogramBuckets:
    def test_le_is_inclusive(self):
        # A value exactly on a bound belongs to that bound's bucket
        # (Prometheus ``le`` semantics).
        hist = Histogram("h", buckets=[1.0, 2.0, 4.0])
        hist.observe(2.0)
        payload = hist.to_payload()
        assert payload["counts"] == [0, 1, 0, 0]

    def test_overflow_lands_in_the_inf_bucket(self):
        hist = Histogram("h", buckets=[1.0, 2.0])
        hist.observe(100.0)
        assert hist.to_payload()["counts"] == [0, 0, 1]

    def test_default_buckets_straddle_service_timescales(self):
        assert DEFAULT_BUCKETS[0] == 0.001
        assert DEFAULT_BUCKETS[-1] > 60.0
        assert list(DEFAULT_BUCKETS) == sorted(DEFAULT_BUCKETS)

    def test_bounds_must_be_distinct_and_nonempty(self):
        with pytest.raises(ValueError):
            Histogram("h", buckets=[])
        with pytest.raises(ValueError):
            Histogram("h", buckets=[1.0, 1.0])

    def test_quantile_interpolates_and_clamps(self):
        hist = Histogram("h", buckets=[1.0, 2.0, 4.0])
        assert hist.quantile(0.5) == 0.0  # empty
        for value in (0.5, 1.5, 3.0, 99.0):
            hist.observe(value)
        # p100 lives in the +Inf bucket: clamped to the top bound.
        assert hist.quantile(1.0) == 4.0
        assert 0.0 < hist.quantile(0.25) <= 1.0
        with pytest.raises(ValueError):
            hist.quantile(1.5)

    def test_merge_rejects_mismatched_bounds(self):
        ours = Histogram("h", buckets=[1.0, 2.0])
        theirs = Histogram("h", buckets=[1.0, 3.0])
        with pytest.raises(ValueError):
            ours.merge(theirs)
        with pytest.raises(ValueError):
            ours.merge_payload({"bounds": [1.0, 2.0], "counts": [1, 2]})


class TestMergeProperty:
    @settings(max_examples=60, deadline=None)
    @given(
        shards=st.lists(
            st.lists(
                st.floats(min_value=0.0, max_value=300.0,
                          allow_nan=False, allow_infinity=False),
                max_size=40,
            ),
            min_size=1,
            max_size=6,
        )
    )
    def test_merged_shards_equal_concatenated_samples(self, shards):
        """merge(shard histograms) == histogram(concat(samples))."""
        merged = Histogram("h")
        for samples in shards:
            shard = Histogram("h")
            for value in samples:
                shard.observe(value)
            merged.merge_payload(shard.to_payload())

        direct = Histogram("h")
        for samples in shards:
            for value in samples:
                direct.observe(value)

        merged_payload = merged.to_payload()
        direct_payload = direct.to_payload()
        assert merged_payload["counts"] == direct_payload["counts"]
        assert merged_payload["count"] == direct_payload["count"]
        # Sums add in a different order: equal up to float associativity.
        assert merged_payload["sum"] == pytest.approx(
            direct_payload["sum"], abs=1e-9, rel=1e-12
        )


class TestRegistry:
    def test_instruments_are_created_once(self):
        registry = MetricsRegistry()
        assert registry.counter("a") is registry.counter("a")
        assert registry.histogram("h") is registry.histogram("h")

    def test_histogram_bucket_conflict_is_an_error(self):
        registry = MetricsRegistry()
        registry.histogram("h", buckets=[1.0, 2.0])
        with pytest.raises(ValueError):
            registry.histogram("h", buckets=[1.0, 4.0])

    def test_counter_values_bridges_the_json_shape(self):
        registry = MetricsRegistry()
        registry.counter("points.completed").inc(3)
        registry.counter("points.executed").inc(1)
        registry.counter("jobs.resumed").inc()
        assert registry.counter_values("points.") == {
            "completed": 3, "executed": 1,
        }

    def test_merge_histogram_payloads_counts_rejects(self):
        source = MetricsRegistry()
        source.histogram("h", buckets=[1.0, 2.0]).observe(0.5)
        target = MetricsRegistry()
        errors = target.merge_histogram_payloads(
            list(source.histogram_payloads().items())
            + [("bad", {"bounds": "garbage"})],
            into=target,
        )
        assert errors == 1
        assert target.histogram("h", buckets=[1.0, 2.0]).count == 1


class TestRateWindow:
    def _window(self, now=1000.0):
        clock = {"now": now}
        window = RateWindow(window_s=60.0, clock=lambda: clock["now"])
        return window, clock

    def test_rate_over_a_full_window(self):
        window, clock = self._window()
        clock["now"] += 120.0  # window long since open
        for _ in range(6):
            window.record(1)
        assert window.per_minute() == 6.0

    def test_young_window_scales_by_elapsed_not_sixty(self):
        # A replica 10 s old that did 5 points reports its 10 s rate
        # (30/min), not a 60 s dilution (5/min).
        window, clock = self._window()
        clock["now"] += 10.0
        window.record(5)
        assert window.per_minute() == 30.0

    def test_old_samples_fall_out(self):
        window, clock = self._window()
        clock["now"] += 120.0
        window.record(4)
        clock["now"] += 61.0
        assert window.per_minute() == 0.0

    def test_rejects_nonpositive_window(self):
        with pytest.raises(ValueError):
            RateWindow(window_s=0.0)
