"""Prometheus text exposition: render → parse round-trip and grammar.

The parser is the same validating instrument the CI ``obs`` job runs
against a live ``/metrics?format=prometheus`` scrape, so a renderer bug
fails here before it fails in CI.
"""

from __future__ import annotations

import math

import pytest

from repro.obs.metrics import MetricsRegistry
from repro.obs.prometheus import (
    ExpositionError,
    parse,
    render,
    sanitize_name,
)


def _sample_map(samples):
    return {s.name: s for family in samples.values() for s in family}


class TestSanitize:
    def test_dotted_names_become_prometheus_names(self):
        assert sanitize_name("points.completed") == "repro_points_completed"
        assert sanitize_name("storage.append_seconds") == \
            "repro_storage_append_seconds"

    def test_already_prefixed_names_are_left_alone(self):
        assert sanitize_name("repro_x") == "repro_x"


class TestRoundTrip:
    def _registry(self):
        registry = MetricsRegistry()
        registry.counter("points.completed", help="completed points").inc(7)
        registry.gauge("queue.depth").set(3)
        hist = registry.histogram("job.execute_seconds",
                                  buckets=[0.1, 1.0, 10.0])
        for value in (0.05, 0.5, 0.5, 30.0):
            hist.observe(value)
        return registry

    def test_render_parses_and_preserves_values(self):
        text = render(self._registry(), replica="r1")
        samples = parse(text)  # raises ExpositionError on any violation
        by_name = _sample_map(samples)

        counter = by_name["repro_points_completed_total"]
        assert counter.value == 7
        assert ("replica", "r1") in counter.labels

        assert by_name["repro_queue_depth"].value == 3

        family = samples["repro_job_execute_seconds"]
        buckets = {
            dict(s.labels)["le"]: s.value
            for s in family if s.name.endswith("_bucket")
        }
        # Cumulative counts: ≤0.1 → 1, ≤1.0 → 3, ≤10.0 → 3, +Inf → 4.
        assert buckets["0.1"] == 1
        assert buckets["1"] == 3
        assert buckets["10"] == 3
        assert buckets["+Inf"] == 4
        count = next(s for s in family if s.name.endswith("_count"))
        assert count.value == 4
        total = next(s for s in family if s.name.endswith("_sum"))
        assert total.value == pytest.approx(31.05)

    def test_every_family_has_a_type_header(self):
        text = render(self._registry())
        assert "# TYPE repro_points_completed_total counter" in text
        assert "# TYPE repro_queue_depth gauge" in text
        assert "# TYPE repro_job_execute_seconds histogram" in text
        assert text.endswith("\n")

    def test_empty_registry_renders_empty_but_valid(self):
        assert parse(render(MetricsRegistry())) == {}


class TestParserValidation:
    def test_sample_without_type_header_is_rejected(self):
        with pytest.raises(ExpositionError):
            parse("repro_orphan 1\n")

    def test_malformed_labels_are_rejected(self):
        with pytest.raises(ExpositionError):
            parse('# TYPE repro_x gauge\nrepro_x{bad-label="1"} 1\n')

    def test_noncumulative_buckets_are_rejected(self):
        text = (
            "# TYPE repro_h histogram\n"
            'repro_h_bucket{le="1"} 5\n'
            'repro_h_bucket{le="2"} 3\n'
            'repro_h_bucket{le="+Inf"} 5\n'
            "repro_h_count 5\n"
        )
        with pytest.raises(ExpositionError):
            parse(text)

    def test_missing_inf_bucket_is_rejected(self):
        text = (
            "# TYPE repro_h histogram\n"
            'repro_h_bucket{le="1"} 5\n'
            "repro_h_count 5\n"
        )
        with pytest.raises(ExpositionError):
            parse(text)

    def test_inf_bucket_must_equal_count(self):
        text = (
            "# TYPE repro_h histogram\n"
            'repro_h_bucket{le="+Inf"} 4\n'
            "repro_h_count 5\n"
        )
        with pytest.raises(ExpositionError):
            parse(text)

    def test_bad_value_is_rejected(self):
        with pytest.raises(ExpositionError):
            parse("# TYPE repro_x gauge\nrepro_x banana\n")

    def test_special_values_parse(self):
        samples = parse("# TYPE repro_x gauge\nrepro_x +Inf\n")
        assert samples["repro_x"][0].value == math.inf
