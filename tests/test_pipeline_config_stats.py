"""Unit tests for the processor configuration and statistics containers."""

import pytest

from repro.errors import ConfigurationError
from repro.pipeline.config import ProcessorConfig
from repro.pipeline.stats import OccupancySample, SimulationStats


class TestProcessorConfig:
    def test_table1_defaults(self):
        config = ProcessorConfig()
        assert config.fetch_width == 8
        assert config.issue_width == 8
        assert config.commit_width == 8
        assert config.instruction_window == 128
        assert config.lsq_size == 64
        assert config.num_int_physical == 128
        assert config.num_fp_physical == 128
        assert config.branch_predictor_entries == 64 * 1024
        assert config.icache.size_bytes == 64 * 1024
        assert config.dcache.dirty_miss_latency == 8

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            ProcessorConfig(fetch_width=0)
        with pytest.raises(ConfigurationError):
            ProcessorConfig(max_cycles=0)

    def test_with_overrides(self):
        config = ProcessorConfig().with_overrides(num_int_physical=64)
        assert config.num_int_physical == 64
        assert config.num_fp_physical == 128

    def test_effective_max_cycles(self):
        assert ProcessorConfig(max_cycles=123).effective_max_cycles == 123
        default = ProcessorConfig(max_instructions=100)
        assert default.effective_max_cycles > 100


class TestSimulationStats:
    def test_ipc(self):
        stats = SimulationStats(cycles=100, committed_instructions=250)
        assert stats.ipc == 2.5
        assert SimulationStats().ipc == 0.0

    def test_branch_rates(self):
        stats = SimulationStats(branch_predictions=100, branch_mispredictions=10)
        assert stats.branch_misprediction_rate == pytest.approx(0.1)
        assert stats.branch_prediction_accuracy == pytest.approx(0.9)
        assert SimulationStats().branch_misprediction_rate == 0.0

    def test_cache_hit_rates(self):
        stats = SimulationStats(icache_hits=90, icache_misses=10,
                                dcache_hits=50, dcache_misses=50)
        assert stats.icache_hit_rate == pytest.approx(0.9)
        assert stats.dcache_hit_rate == pytest.approx(0.5)

    def test_bypass_fraction(self):
        stats = SimulationStats(operands_from_bypass=30, operands_from_file=70)
        assert stats.bypass_operand_fraction == pytest.approx(0.3)

    def test_occupancy_cdf(self):
        stats = SimulationStats()
        stats.record_occupancy(OccupancySample(live_needed=2, live_ready=1))
        stats.record_occupancy(OccupancySample(live_needed=4, live_ready=1))
        cdf = stats.occupancy_cdf("needed", max_registers=5)
        assert cdf[1] == 0.0
        assert cdf[2] == 50.0
        assert cdf[5] == 100.0
        ready = stats.occupancy_cdf("ready", max_registers=5)
        assert ready[1] == 100.0

    def test_occupancy_cdf_overflow_folding(self):
        stats = SimulationStats()
        stats.record_occupancy(OccupancySample(live_needed=40, live_ready=0))
        cdf = stats.occupancy_cdf("needed", max_registers=8)
        assert cdf[-1] == 100.0
        assert cdf[0] == 0.0

    def test_empty_occupancy_cdf(self):
        cdf = SimulationStats().occupancy_cdf("needed", max_registers=4)
        assert cdf == [100.0] * 5

    def test_value_reads(self):
        stats = SimulationStats()
        for reads in (0, 1, 1, 5):
            stats.record_value_reads(reads)
        assert stats.read_at_most_once_fraction() == pytest.approx(0.75)
        assert SimulationStats().read_at_most_once_fraction() == 1.0

    def test_summary_keys(self):
        summary = SimulationStats(benchmark="gcc", architecture="x").summary()
        assert {"benchmark", "architecture", "ipc", "cycles"} <= set(summary)
