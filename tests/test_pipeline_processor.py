"""Integration tests of the cycle-level processor model."""

import pytest

from repro.errors import ConfigurationError, SimulationError
from repro.isa.assembler import assemble
from repro.pipeline.config import ProcessorConfig
from repro.pipeline.processor import Processor, simulate
from repro.regfile.cache import RegisterFileCache
from repro.regfile.monolithic import SingleBankedRegisterFile
from repro.workloads.kernels import dot_product_program
from repro.workloads.profiles import get_profile
from repro.workloads.synthetic import SyntheticWorkload


def _one_cycle():
    return SingleBankedRegisterFile(latency=1)


def _two_cycle_one_bypass():
    return SingleBankedRegisterFile(latency=2, bypass_levels=1)


class TestBasicExecution:
    def test_straight_line_program_commits_everything(self, small_config):
        program = assemble("""
            li r1, 1
            li r2, 2
            add r3, r1, r2
            add r4, r3, r3
            add r5, r4, r1
        """)
        stats = simulate(program.run(), _one_cycle, ProcessorConfig(max_instructions=100))
        assert stats.committed_instructions == 5
        assert stats.cycles > 0
        assert 0 < stats.ipc <= 8

    def test_dependent_chain_takes_at_least_chain_length_cycles(self):
        program = assemble("\n".join(["li r1, 1"] + ["add r1, r1, r1"] * 20))
        stats = simulate(program.run(), _one_cycle, ProcessorConfig(max_instructions=100))
        assert stats.cycles >= 20

    def test_kernel_runs_end_to_end(self):
        stats = simulate(dot_product_program(length=32).run(), _one_cycle,
                         ProcessorConfig(max_instructions=2000), "dot_product")
        assert stats.committed_instructions == 32 * 8 + 6
        assert stats.dcache_hits + stats.dcache_misses > 0

    def test_max_instructions_stops_the_run(self, gcc_workload):
        config = ProcessorConfig(max_instructions=300)
        stats = simulate(gcc_workload.instructions(1000), _one_cycle, config, "gcc")
        assert stats.committed_instructions == 300

    def test_stream_exhaustion_stops_the_run(self, gcc_workload):
        config = ProcessorConfig(max_instructions=10_000)
        stats = simulate(gcc_workload.instructions(400), _one_cycle, config, "gcc")
        assert stats.committed_instructions <= 400
        assert stats.committed_instructions > 300  # nearly everything commits

    def test_mismatched_regfile_timing_rejected(self, gcc_workload):
        toggles = iter([1, 2])

        def alternating():
            return SingleBankedRegisterFile(latency=next(toggles))

        with pytest.raises(ConfigurationError):
            Processor(gcc_workload.instructions(100), alternating)

    def test_livelock_guard_raises(self, gcc_workload):
        config = ProcessorConfig(max_instructions=5000, max_cycles=3)
        with pytest.raises(SimulationError):
            simulate(gcc_workload.instructions(5000), _one_cycle, config, "gcc")


class TestStatisticsPlausibility:
    def test_branch_and_cache_statistics_populated(self, gcc_workload, small_config):
        stats = simulate(gcc_workload.instructions(2500), _one_cycle, small_config, "gcc")
        assert stats.branch_predictions > 0
        assert 0.0 <= stats.branch_misprediction_rate <= 1.0
        assert stats.icache_hits > 0
        assert stats.dcache_hits > 0
        assert stats.operands_from_bypass > 0
        assert stats.operands_from_file > 0

    def test_value_read_distribution_populated(self, swim_workload, small_config):
        stats = simulate(swim_workload.instructions(2500), _one_cycle, small_config, "swim")
        assert sum(stats.value_read_distribution.values()) > 200
        assert 0.0 < stats.read_at_most_once_fraction() <= 1.0

    def test_occupancy_collection_optional(self, swim_workload):
        config = ProcessorConfig(max_instructions=600, collect_occupancy=True)
        stats = simulate(swim_workload.instructions(1200), _one_cycle, config, "swim")
        assert sum(stats.occupancy_needed.values()) == stats.cycles
        config_off = ProcessorConfig(max_instructions=600)
        stats_off = simulate(swim_workload.instructions(1200), _one_cycle, config_off, "swim")
        assert sum(stats_off.occupancy_needed.values()) == 0

    def test_regfile_statistics_exported(self, swim_workload, small_config):
        stats = simulate(swim_workload.instructions(2500), RegisterFileCache,
                         small_config, "swim")
        assert any(key.endswith("results_cached") for key in stats.regfile_statistics)


class TestArchitecturalOrdering:
    """The relative ordering the whole paper is built on."""

    @pytest.mark.parametrize("benchmark_name", ["ijpeg", "swim"])
    def test_one_cycle_beats_two_cycle_single_bypass(self, benchmark_name, small_config):
        workload = SyntheticWorkload(get_profile(benchmark_name))
        fast = simulate(workload.instructions(2500), _one_cycle, small_config, benchmark_name)
        slow = simulate(workload.instructions(2500), _two_cycle_one_bypass,
                        small_config, benchmark_name)
        assert fast.ipc > slow.ipc

    @pytest.mark.parametrize("benchmark_name", ["ijpeg", "swim"])
    def test_full_bypass_recovers_most_of_the_loss(self, benchmark_name, small_config):
        workload = SyntheticWorkload(get_profile(benchmark_name))
        full = simulate(workload.instructions(2500),
                        lambda: SingleBankedRegisterFile(latency=2, bypass_levels=2),
                        small_config, benchmark_name)
        single = simulate(workload.instructions(2500), _two_cycle_one_bypass,
                          small_config, benchmark_name)
        assert full.ipc > single.ipc

    @pytest.mark.parametrize("benchmark_name", ["ijpeg", "swim"])
    def test_register_file_cache_between_the_two(self, benchmark_name, small_config):
        workload = SyntheticWorkload(get_profile(benchmark_name))
        one = simulate(workload.instructions(2500), _one_cycle, small_config, benchmark_name)
        rfc = simulate(workload.instructions(2500), RegisterFileCache, small_config, benchmark_name)
        two = simulate(workload.instructions(2500), _two_cycle_one_bypass,
                       small_config, benchmark_name)
        assert two.ipc < rfc.ipc <= one.ipc * 1.02

    def test_port_starved_configuration_is_slower(self, small_config):
        workload = SyntheticWorkload(get_profile("ijpeg"))
        wide = simulate(workload.instructions(2500), _one_cycle, small_config, "ijpeg")
        narrow = simulate(
            workload.instructions(2500),
            lambda: SingleBankedRegisterFile(latency=1, read_ports=1, write_ports=1),
            small_config, "ijpeg",
        )
        assert narrow.ipc < wide.ipc

    def test_more_physical_registers_do_not_hurt(self, tiny_config):
        workload = SyntheticWorkload(get_profile("swim"))
        small = simulate(workload.instructions(1200),
                         _one_cycle, tiny_config.with_overrides(num_int_physical=48,
                                                                num_fp_physical=48),
                         "swim")
        large = simulate(workload.instructions(1200),
                         _one_cycle, tiny_config.with_overrides(num_int_physical=192,
                                                                num_fp_physical=192),
                         "swim")
        assert large.ipc >= small.ipc * 0.98

    def test_deterministic_replay(self, tiny_config):
        workload = SyntheticWorkload(get_profile("li"))
        first = simulate(workload.instructions(1200), _one_cycle, tiny_config, "li")
        second = simulate(workload.instructions(1200), _one_cycle, tiny_config, "li")
        assert first.ipc == second.ipc
        assert first.cycles == second.cycles
