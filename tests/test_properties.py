"""Property-based tests (hypothesis) for the core data structures."""

import os
from collections import Counter

from hypothesis import given, settings, strategies as st

from repro.analysis.distributions import cumulative_distribution
from repro.analysis.metrics import harmonic_mean
from repro.frontend.gshare import GSharePredictor
from repro.hwmodel.access_time import access_time_ns
from repro.hwmodel.area import RegisterFileGeometry
from repro.hwmodel.pareto import DesignPoint, pareto_frontier
from repro.memsys.cache import CacheConfig, CacheModel
from repro.regfile.ports import WriteScheduler
from repro.regfile.replacement import PseudoLRU
from repro.rename.free_list import FreeList
from repro.storage.sharded import ShardedStore


# ----------------------------------------------------------------------
# free list
# ----------------------------------------------------------------------

@given(st.lists(st.booleans(), max_size=200))
@settings(max_examples=50, deadline=None)
def test_free_list_never_duplicates_allocations(operations):
    """Alternating allocate/release never hands out the same register twice."""
    free = FreeList(range(8))
    allocated = []
    for do_allocate in operations:
        if do_allocate and not free.empty:
            register = free.allocate()
            assert register not in allocated
            allocated.append(register)
        elif allocated:
            free.release(allocated.pop())
    assert len(allocated) + len(free) == 8


# ----------------------------------------------------------------------
# pseudo-LRU
# ----------------------------------------------------------------------

@given(st.lists(st.integers(min_value=0, max_value=40), min_size=1, max_size=300),
       st.sampled_from([2, 4, 8, 16]))
@settings(max_examples=50, deadline=None)
def test_pseudo_lru_never_exceeds_capacity(keys, capacity):
    lru = PseudoLRU(capacity)
    resident = set()
    for key in keys:
        evicted = lru.insert(key)
        resident.add(key)
        if evicted is not None:
            assert evicted in resident
            resident.discard(evicted)
        assert len(lru) == len(resident) <= capacity
        assert set(lru.keys()) == resident


@given(st.sampled_from([2, 4, 8, 16]))
@settings(max_examples=20, deadline=None)
def test_pseudo_lru_recently_touched_survives(capacity):
    """The most recently touched entry is never the next victim."""
    lru = PseudoLRU(capacity)
    for key in range(capacity):
        lru.insert(key)
    lru.touch(0)
    evicted = lru.insert(capacity)
    assert evicted != 0


# ----------------------------------------------------------------------
# write scheduler
# ----------------------------------------------------------------------

@given(st.lists(st.integers(min_value=0, max_value=30), min_size=1, max_size=100),
       st.integers(min_value=1, max_value=4))
@settings(max_examples=50, deadline=None)
def test_write_scheduler_never_exceeds_ports_per_cycle(requests, ports):
    scheduler = WriteScheduler(ports)
    scheduled = Counter()
    for requested in requests:
        actual = scheduler.schedule(requested)
        assert actual >= requested
        scheduled[actual] += 1
    assert max(scheduled.values()) <= ports


# ----------------------------------------------------------------------
# cache model
# ----------------------------------------------------------------------

@given(st.lists(st.integers(min_value=0, max_value=1 << 16), min_size=1, max_size=300))
@settings(max_examples=30, deadline=None)
def test_cache_immediate_reaccess_always_hits(addresses):
    cache = CacheModel(CacheConfig(size_bytes=4096, associativity=2, line_bytes=64))
    for address in addresses:
        cache.access(address)
        assert cache.access(address).hit


@given(st.lists(st.integers(min_value=0, max_value=1 << 20), min_size=1, max_size=200))
@settings(max_examples=30, deadline=None)
def test_cache_hits_plus_misses_equals_accesses(addresses):
    cache = CacheModel(CacheConfig())
    for address in addresses:
        cache.access(address)
    assert cache.hits + cache.misses == len(addresses)


# ----------------------------------------------------------------------
# gshare
# ----------------------------------------------------------------------

@given(st.lists(st.tuples(st.integers(min_value=0, max_value=1 << 20), st.booleans()),
                min_size=1, max_size=300))
@settings(max_examples=30, deadline=None)
def test_gshare_statistics_are_consistent(branches):
    predictor = GSharePredictor(num_entries=1024)
    for pc, taken in branches:
        predicted, checkpoint = predictor.predict(pc)
        predictor.update(pc, taken, checkpoint, predicted)
    assert predictor.predictions == len(branches)
    assert 0 <= predictor.mispredictions <= predictor.predictions
    assert 0.0 <= predictor.accuracy <= 1.0


# ----------------------------------------------------------------------
# analytical models
# ----------------------------------------------------------------------

@given(st.integers(min_value=8, max_value=512),
       st.integers(min_value=1, max_value=16),
       st.integers(min_value=1, max_value=16))
@settings(max_examples=50, deadline=None)
def test_hw_models_are_positive_and_monotonic_in_ports(registers, reads, writes):
    area = RegisterFileGeometry(registers, reads, writes).area_lambda2()
    bigger = RegisterFileGeometry(registers, reads + 1, writes).area_lambda2()
    assert 0 < area < bigger
    assert access_time_ns(registers, reads, writes) > 0
    assert access_time_ns(registers, reads + 4, writes) > access_time_ns(
        registers, reads, writes)


# ----------------------------------------------------------------------
# pareto frontier
# ----------------------------------------------------------------------

def _dominated(point, others):
    """Strict Pareto dominance: someone is no worse and strictly better."""
    return any(
        (other.cost <= point.cost and other.value > point.value)
        or (other.cost < point.cost and other.value >= point.value)
        for other in others
    )


@given(st.lists(st.tuples(st.floats(min_value=1, max_value=1000),
                          st.floats(min_value=0.01, max_value=10)),
                min_size=1, max_size=80))
@settings(max_examples=50, deadline=None)
def test_pareto_frontier_is_sound(points_data):
    points = [DesignPoint(cost=c, value=v) for c, v in points_data]
    frontier = pareto_frontier(points)
    assert frontier, "frontier of a non-empty set is non-empty"
    # No frontier point is dominated by any original point.
    for point in frontier:
        assert not _dominated(point, points)
    # The frontier is sorted by cost; value only repeats on an exact
    # (cost, value) tie — never with a cost increase (that point would
    # be dominated).
    costs = [p.cost for p in frontier]
    values = [p.value for p in frontier]
    assert costs == sorted(costs)
    for left, right in zip(frontier, frontier[1:]):
        assert right.value > left.value or (
            right.value == left.value and right.cost == left.cost
        )


@given(st.lists(st.tuples(st.integers(min_value=1, max_value=4),
                          st.integers(min_value=1, max_value=3)),
                min_size=1, max_size=30))
@settings(max_examples=50, deadline=None)
def test_pareto_frontier_is_exactly_the_nondominated_multiset(points_data):
    """Completeness + soundness on a tiny grid (ties and duplicates are
    the common case here, not the corner case): the frontier is exactly
    the multiset of non-dominated input points, so exact (cost, value)
    ties and duplicates are all kept and everything strictly dominated
    is dropped."""
    points = [DesignPoint(cost=c, value=v) for c, v in points_data]
    frontier = pareto_frontier(points)
    expected = [point for point in points if not _dominated(point, points)]
    key = lambda p: (p.cost, p.value)  # noqa: E731
    assert sorted(map(key, frontier)) == sorted(map(key, expected))


@given(st.lists(st.tuples(st.floats(min_value=1, max_value=100),
                          st.floats(min_value=0.01, max_value=10)),
                min_size=1, max_size=20))
@settings(max_examples=50, deadline=None)
def test_pareto_frontier_duplicating_every_point_duplicates_the_frontier(points_data):
    points = [DesignPoint(cost=c, value=v) for c, v in points_data]
    once = pareto_frontier(points)
    twice = pareto_frontier(points + points)
    key = lambda p: (p.cost, p.value)  # noqa: E731
    assert sorted(map(key, twice)) == sorted(map(key, once + once))


# ----------------------------------------------------------------------
# metrics / distributions
# ----------------------------------------------------------------------

@given(st.lists(st.floats(min_value=0.01, max_value=100), min_size=1, max_size=40))
@settings(max_examples=50, deadline=None)
def test_harmonic_mean_bounded_by_min_and_max(values):
    mean = harmonic_mean(values)
    assert min(values) - 1e-9 <= mean <= max(values) + 1e-9


@given(st.dictionaries(st.integers(min_value=0, max_value=64),
                       st.integers(min_value=1, max_value=50), max_size=20),
       st.integers(min_value=1, max_value=64))
@settings(max_examples=50, deadline=None)
def test_cumulative_distribution_is_monotone_and_ends_at_100(counts, max_value):
    cdf = cumulative_distribution(Counter(counts), max_value)
    assert all(b >= a for a, b in zip(cdf, cdf[1:]))
    assert cdf[-1] == 100.0 or not counts


# ----------------------------------------------------------------------
# sharded segment-log store vs a dict model
# ----------------------------------------------------------------------

_STORE_TTL = 100.0
_STORE_BUDGET = 160  # payload-byte budget (num_shards=1 => per-shard too)

_KEYS = st.sampled_from([f"{i:02x}beef" for i in range(6)])
_OPS = st.one_of(
    st.tuples(st.just("put"), _KEYS, st.binary(min_size=0, max_size=48)),
    st.tuples(st.just("get"), _KEYS, st.just(b"")),
    st.tuples(st.just("delete"), _KEYS, st.just(b"")),
    st.tuples(st.just("advance"),
              st.floats(min_value=0.5, max_value=60.0), st.just(b"")),
    st.tuples(st.just("compact"), st.just(0), st.just(b"")),
)


class _StoreModel:
    """Reference semantics: insertion-ordered dict + TTL + size budget.

    Mirrors the store's visible behaviour exactly: entries expire after
    the TTL (reads miss immediately), and whenever the total payload
    exceeds the budget a compaction drops expired entries first, then
    evicts the oldest (by timestamp, then write order) until it fits.
    """

    def __init__(self):
        self.entries = {}  # key -> (ts, value), insertion ordered

    def _payload(self):
        return sum(len(value) for _, value in self.entries.values())

    def compact(self, now):
        self.entries = {
            key: (ts, value) for key, (ts, value) in self.entries.items()
            if now - ts <= _STORE_TTL
        }
        while self._payload() > _STORE_BUDGET:
            oldest = min(self.entries,
                         key=lambda k: (self.entries[k][0],
                                        list(self.entries).index(k)))
            del self.entries[oldest]

    def put(self, key, value, now):
        self.entries.pop(key, None)
        self.entries[key] = (now, value)
        if self._payload() > _STORE_BUDGET:
            self.compact(now)

    def get(self, key, now):
        entry = self.entries.get(key)
        if entry is None or now - entry[0] > _STORE_TTL:
            return None
        return entry[1]

    def delete(self, key):
        return self.entries.pop(key, None) is not None

    def live_keys(self, now):
        return {key for key, (ts, _) in self.entries.items()
                if now - ts <= _STORE_TTL}


@given(st.lists(_OPS, max_size=60))
@settings(max_examples=40, deadline=None)
def test_sharded_store_agrees_with_dict_model(tmp_path_factory, operations):
    """put/get/delete/compact under TTL + size bound == the dict model."""
    root = str(tmp_path_factory.mktemp("store"))
    clock = [1000.0]
    store = ShardedStore(root, num_shards=1, ttl_seconds=_STORE_TTL,
                         max_bytes=_STORE_BUDGET, clock=lambda: clock[0])
    model = _StoreModel()
    for op, a, b in operations:
        now = clock[0]
        if op == "put":
            store.put(a, b)
            model.put(a, b, now)
        elif op == "get":
            assert store.get(a) == model.get(a, now), a
        elif op == "delete":
            assert store.delete(a) == model.delete(a), a
        elif op == "advance":
            clock[0] += a
        elif op == "compact":
            store.compact()
            model.compact(now)
    now = clock[0]
    assert set(store.keys()) == model.live_keys(now)
    for key in model.live_keys(now):
        assert store.get(key) == model.get(key, now)

    # A fresh process over the same tree — with a torn tail injected at
    # the end of every segment — rebuilds exactly the same state.
    for shard_name in os.listdir(root):
        shard_dir = os.path.join(root, shard_name)
        if not os.path.isdir(shard_dir):
            continue
        for name in os.listdir(shard_dir):
            if name.startswith("seg-") and name.endswith(".log"):
                with open(os.path.join(shard_dir, name), "ab") as handle:
                    handle.write(b"\xff\xff\xff")  # short header: torn
    reopened = ShardedStore(root, num_shards=1, ttl_seconds=_STORE_TTL,
                            max_bytes=_STORE_BUDGET, clock=lambda: clock[0])
    assert set(reopened.keys()) == model.live_keys(now)
    for key in model.live_keys(now):
        assert reopened.get(key) == model.get(key, now)
