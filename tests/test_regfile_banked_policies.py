"""Unit tests for the one-level banked register file and the policy registries."""

import pytest

from repro.errors import ConfigurationError
from repro.execute.scoreboard import ValueScoreboard
from repro.isa.instruction import RegisterClass
from repro.regfile.banked import OneLevelBankedRegisterFile
from repro.regfile.base import OperandSource
from repro.regfile.policies import (
    AlwaysCaching,
    NeverCaching,
    NonBypassCaching,
    ReadyCaching,
    caching_policy_by_name,
)
from repro.regfile.prefetch import FetchOnDemand, PrefetchFirstPair, fetch_policy_by_name
from repro.rename.renamer import PhysicalRegister


def _phys(index):
    return PhysicalRegister(RegisterClass.INT, index)


def _produced(scoreboard, index, ex_end=1, rf_ready=2):
    register = _phys(index)
    state = scoreboard.allocate(register, producer_seq=index)
    state.ex_end_cycle = ex_end
    state.rf_ready_cycle = rf_ready
    state.written_back = True
    return register, state


class TestOneLevelBanked:
    def test_bank_interleaving(self):
        regfile = OneLevelBankedRegisterFile(num_banks=2)
        assert regfile.bank_of(_phys(4)) == 0
        assert regfile.bank_of(_phys(5)) == 1

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            OneLevelBankedRegisterFile(num_banks=0)

    def test_bank_conflicts_block_issue(self):
        regfile = OneLevelBankedRegisterFile(num_banks=2, read_ports_per_bank=1)
        regfile.begin_cycle(10)
        scoreboard = ValueScoreboard()
        a, state_a = _produced(scoreboard, 2)    # bank 0
        b, state_b = _produced(scoreboard, 4)    # bank 0
        c, state_c = _produced(scoreboard, 5)    # bank 1
        access_a = regfile.plan_operand_read(a, state_a, issue_cycle=10)
        access_b = regfile.plan_operand_read(b, state_b, issue_cycle=10)
        access_c = regfile.plan_operand_read(c, state_c, issue_cycle=10)
        assert access_a.bank == 0 and access_c.bank == 1
        assert regfile.can_claim_reads([access_a, access_c])       # different banks
        regfile.claim_reads([access_a, access_c])
        # Bank 0's single port is now used: a second read of that bank in the
        # same cycle is a bank conflict.
        assert not regfile.can_claim_reads([access_b])
        assert regfile.bank_conflicts >= 1
        regfile.begin_cycle(11)
        assert regfile.can_claim_reads([access_b])

    def test_bypass_when_not_yet_written(self):
        regfile = OneLevelBankedRegisterFile(num_banks=2)
        scoreboard = ValueScoreboard()
        register = _phys(2)
        state = scoreboard.allocate(register, 0)
        state.ex_end_cycle = 9
        access = regfile.plan_operand_read(register, state, issue_cycle=9)
        assert access.source is OperandSource.BYPASS

    def test_writeback_uses_bank_scheduler(self):
        regfile = OneLevelBankedRegisterFile(num_banks=2, write_ports_per_bank=1)
        scoreboard = ValueScoreboard()
        a, state_a = _produced(scoreboard, 2)
        b, state_b = _produced(scoreboard, 4)    # same bank as a
        c, state_c = _produced(scoreboard, 5)    # other bank
        assert regfile.writeback(a, state_a, cycle=5, window=None) == 5
        assert regfile.writeback(b, state_b, cycle=5, window=None) == 6
        assert regfile.writeback(c, state_c, cycle=5, window=None) == 5

    def test_describe_and_statistics(self):
        regfile = OneLevelBankedRegisterFile(num_banks=4, read_ports_per_bank=2)
        assert "x4" in regfile.describe()
        assert "reads_from_banks" in regfile.statistics()


class TestPolicyRegistries:
    def test_caching_policy_by_name(self):
        assert isinstance(caching_policy_by_name("non-bypass"), NonBypassCaching)
        assert isinstance(caching_policy_by_name("ready"), ReadyCaching)
        assert isinstance(caching_policy_by_name("always"), AlwaysCaching)
        assert isinstance(caching_policy_by_name("never"), NeverCaching)

    def test_unknown_caching_policy(self):
        with pytest.raises(ConfigurationError):
            caching_policy_by_name("magic")

    def test_fetch_policy_by_name(self):
        assert isinstance(fetch_policy_by_name("fetch-on-demand"), FetchOnDemand)
        assert isinstance(fetch_policy_by_name("prefetch-first-pair"), PrefetchFirstPair)

    def test_unknown_fetch_policy(self):
        with pytest.raises(ConfigurationError):
            fetch_policy_by_name("oracle")
