"""Unit tests for the register file cache (the paper's contribution)."""

import pytest

from repro.errors import ConfigurationError
from repro.execute.bypass import BypassNetwork
from repro.execute.issue_queue import IssueQueue
from repro.execute.scoreboard import ValueScoreboard
from repro.isa.instruction import DynamicInstruction, INT_LOGICAL_REGISTERS, RegisterClass
from repro.isa.opcodes import OpClass
from repro.regfile.base import OperandSource
from repro.regfile.cache import RegisterFileCache
from repro.regfile.policies import AlwaysCaching, NeverCaching, NonBypassCaching, ReadyCaching
from repro.regfile.prefetch import FetchOnDemand, PrefetchFirstPair
from repro.rename.renamer import PhysicalRegister, RenamedInstruction


def _phys(index):
    return PhysicalRegister(RegisterClass.INT, index)


def _window():
    scoreboard = ValueScoreboard()
    return IssueQueue(32, scoreboard, BypassNetwork(1, 1)), scoreboard


def _produced_state(scoreboard, index, ex_end, rf_ready):
    register = _phys(index)
    state = scoreboard.allocate(register, producer_seq=index)
    state.ex_end_cycle = ex_end
    state.rf_ready_cycle = rf_ready
    state.written_back = True
    return register, state


class TestConstruction:
    def test_capacity_must_be_power_of_two(self):
        with pytest.raises(ConfigurationError):
            RegisterFileCache(upper_capacity=12)

    def test_defaults_match_paper(self):
        cache = RegisterFileCache()
        assert cache.upper_capacity == 16
        assert cache.read_stages == 1 and cache.bypass_levels == 1
        assert isinstance(cache.caching_policy, NonBypassCaching)
        assert isinstance(cache.fetch_policy, FetchOnDemand)

    def test_describe_mentions_policies(self):
        cache = RegisterFileCache(caching_policy=ReadyCaching(),
                                  fetch_policy=PrefetchFirstPair())
        assert "ready" in cache.describe()
        assert "prefetch-first-pair" in cache.describe()


class TestReadPlanning:
    def test_bypass_exactly_one_cycle_after_produce(self):
        cache = RegisterFileCache()
        window, scoreboard = _window()
        register, state = _produced_state(scoreboard, 40, ex_end=9, rf_ready=10)
        access = cache.plan_operand_read(register, state, issue_cycle=9)
        assert access.source is OperandSource.BYPASS

    def test_miss_when_not_cached(self):
        cache = RegisterFileCache()
        window, scoreboard = _window()
        register, state = _produced_state(scoreboard, 40, ex_end=5, rf_ready=6)
        access = cache.plan_operand_read(register, state, issue_cycle=10)
        assert access.source is OperandSource.MISS

    def test_hit_after_caching_at_writeback(self):
        cache = RegisterFileCache(caching_policy=AlwaysCaching())
        window, scoreboard = _window()
        register, state = _produced_state(scoreboard, 40, ex_end=5, rf_ready=6)
        cache.writeback(register, state, cycle=6, window=window)
        access = cache.plan_operand_read(register, state, issue_cycle=10)
        assert access.source is OperandSource.FILE

    def test_not_ready_while_value_in_flight_to_lower(self):
        cache = RegisterFileCache()
        window, scoreboard = _window()
        register = _phys(40)
        state = scoreboard.allocate(register, 0)
        state.ex_end_cycle = 5          # produced but not yet written back
        access = cache.plan_operand_read(register, state, issue_cycle=10)
        assert access.source is OperandSource.NOT_READY

    def test_not_ready_while_fill_in_flight(self):
        cache = RegisterFileCache(lower_read_latency=2)
        window, scoreboard = _window()
        register, state = _produced_state(scoreboard, 40, ex_end=5, rf_ready=6)
        completion = cache.request_fill(register, state, cycle=10)
        assert completion == 13          # lower read (2) + upper write (1)
        access = cache.plan_operand_read(register, state, issue_cycle=11)
        assert access.source is OperandSource.NOT_READY
        assert access.retry_cycle == completion


class TestFills:
    def test_fill_completion_inserts_into_upper(self):
        cache = RegisterFileCache()
        window, scoreboard = _window()
        register, state = _produced_state(scoreboard, 40, ex_end=5, rf_ready=6)
        completion = cache.request_fill(register, state, cycle=10)
        assert completion == 12
        assert not cache.present_in_upper(register)
        cache.begin_cycle(completion)
        assert cache.present_in_upper(register)
        assert cache.demand_fills == 1

    def test_fill_denied_when_all_buses_busy(self):
        cache = RegisterFileCache(num_buses=1)
        window, scoreboard = _window()
        first, state1 = _produced_state(scoreboard, 40, ex_end=5, rf_ready=6)
        second, state2 = _produced_state(scoreboard, 41, ex_end=5, rf_ready=6)
        assert cache.request_fill(first, state1, cycle=10) is not None
        assert cache.request_fill(second, state2, cycle=10) is None
        assert cache.buses.transfers_denied == 1

    def test_fill_for_resident_register_is_trivial(self):
        cache = RegisterFileCache(caching_policy=AlwaysCaching())
        window, scoreboard = _window()
        register, state = _produced_state(scoreboard, 40, ex_end=5, rf_ready=6)
        cache.writeback(register, state, cycle=6, window=window)
        assert cache.request_fill(register, state, cycle=10) == 10

    def test_duplicate_fill_requests_share_the_transfer(self):
        cache = RegisterFileCache()
        window, scoreboard = _window()
        register, state = _produced_state(scoreboard, 40, ex_end=5, rf_ready=6)
        first = cache.request_fill(register, state, cycle=10)
        second = cache.request_fill(register, state, cycle=11)
        assert first == second
        assert cache.buses.transfers_started == 1

    def test_fill_rejected_before_value_reaches_lower_level(self):
        cache = RegisterFileCache()
        window, scoreboard = _window()
        register = _phys(40)
        state = scoreboard.allocate(register, 0)
        state.ex_end_cycle = 9
        assert cache.request_fill(register, state, cycle=10) is None


class TestWritebackPolicies:
    def test_non_bypass_caching_skips_bypassed_values(self):
        cache = RegisterFileCache(caching_policy=NonBypassCaching())
        window, scoreboard = _window()
        register, state = _produced_state(scoreboard, 40, ex_end=5, rf_ready=6)
        state.consumed_via_bypass = True
        cache.writeback(register, state, cycle=6, window=window)
        assert not cache.present_in_upper(register)
        assert cache.results_not_cached == 1

    def test_non_bypass_caching_keeps_unbypassed_values(self):
        cache = RegisterFileCache(caching_policy=NonBypassCaching())
        window, scoreboard = _window()
        register, state = _produced_state(scoreboard, 40, ex_end=5, rf_ready=6)
        cache.writeback(register, state, cycle=6, window=window)
        assert cache.present_in_upper(register)
        assert cache.results_cached == 1

    def test_never_caching(self):
        cache = RegisterFileCache(caching_policy=NeverCaching())
        window, scoreboard = _window()
        register, state = _produced_state(scoreboard, 40, ex_end=5, rf_ready=6)
        cache.writeback(register, state, cycle=6, window=window)
        assert not cache.present_in_upper(register)

    def test_upper_write_port_conflict_skips_caching(self):
        cache = RegisterFileCache(caching_policy=AlwaysCaching(), upper_write_ports=1)
        window, scoreboard = _window()
        a, state_a = _produced_state(scoreboard, 40, ex_end=5, rf_ready=6)
        b, state_b = _produced_state(scoreboard, 41, ex_end=5, rf_ready=6)
        cache.writeback(a, state_a, cycle=6, window=window)
        cache.writeback(b, state_b, cycle=6, window=window)
        assert cache.present_in_upper(a)
        assert not cache.present_in_upper(b)
        assert cache.cache_write_conflicts == 1

    def test_lower_write_port_contention_delays_availability(self):
        cache = RegisterFileCache(lower_write_ports=1, caching_policy=NeverCaching())
        window, scoreboard = _window()
        a, state_a = _produced_state(scoreboard, 40, ex_end=5, rf_ready=6)
        b, state_b = _produced_state(scoreboard, 41, ex_end=5, rf_ready=6)
        assert cache.writeback(a, state_a, cycle=6, window=window) == 6
        assert cache.writeback(b, state_b, cycle=6, window=window) == 7

    def test_ready_caching_requires_ready_waiting_consumer(self):
        cache = RegisterFileCache(caching_policy=ReadyCaching())
        window, scoreboard = _window()
        producer_reg, producer_state = _produced_state(scoreboard, 40, ex_end=5, rf_ready=6)
        other_ready = _phys(41)
        scoreboard.seed_architected(other_ready)
        consumer = RenamedInstruction(
            instruction=DynamicInstruction(seq=9, op_class=OpClass.INT_ALU,
                                           dest=INT_LOGICAL_REGISTERS[3],
                                           sources=(INT_LOGICAL_REGISTERS[1],
                                                    INT_LOGICAL_REGISTERS[2])),
            dest=_phys(50), sources=(producer_reg, other_ready),
        )
        window.dispatch(consumer, cycle=2)
        cache.writeback(producer_reg, producer_state, cycle=6, window=window)
        assert cache.present_in_upper(producer_reg)

    def test_ready_caching_skips_when_other_operand_missing(self):
        cache = RegisterFileCache(caching_policy=ReadyCaching())
        window, scoreboard = _window()
        producer_reg, producer_state = _produced_state(scoreboard, 40, ex_end=5, rf_ready=6)
        pending = _phys(42)
        scoreboard.allocate(pending, producer_seq=8)   # not produced yet
        consumer = RenamedInstruction(
            instruction=DynamicInstruction(seq=9, op_class=OpClass.INT_ALU,
                                           dest=INT_LOGICAL_REGISTERS[3],
                                           sources=(INT_LOGICAL_REGISTERS[1],
                                                    INT_LOGICAL_REGISTERS[2])),
            dest=_phys(50), sources=(producer_reg, pending),
        )
        window.dispatch(consumer, cycle=2)
        cache.writeback(producer_reg, producer_state, cycle=6, window=window)
        assert not cache.present_in_upper(producer_reg)


class TestEvictionAndRelease:
    def test_eviction_when_upper_is_full(self):
        cache = RegisterFileCache(upper_capacity=4, caching_policy=AlwaysCaching())
        window, scoreboard = _window()
        registers = []
        for index in range(5):
            register, state = _produced_state(scoreboard, 40 + index, ex_end=5, rf_ready=6)
            cache.writeback(register, state, cycle=6 + index, window=window)
            registers.append(register)
        assert cache.evictions == 1
        resident = sum(cache.present_in_upper(r) for r in registers)
        assert resident == 4

    def test_release_removes_from_upper_and_pending(self):
        cache = RegisterFileCache(caching_policy=AlwaysCaching())
        window, scoreboard = _window()
        register, state = _produced_state(scoreboard, 40, ex_end=5, rf_ready=6)
        cache.writeback(register, state, cycle=6, window=window)
        cache.release(register)
        assert not cache.present_in_upper(register)

    def test_read_ports_enforced(self):
        cache = RegisterFileCache(upper_read_ports=1, caching_policy=AlwaysCaching())
        window, scoreboard = _window()
        a, state_a = _produced_state(scoreboard, 40, ex_end=5, rf_ready=6)
        b, state_b = _produced_state(scoreboard, 41, ex_end=5, rf_ready=6)
        cache.writeback(a, state_a, cycle=6, window=window)
        cache.writeback(b, state_b, cycle=6, window=window)
        cache.begin_cycle(10)
        access_a = cache.plan_operand_read(a, state_a, issue_cycle=10)
        access_b = cache.plan_operand_read(b, state_b, issue_cycle=10)
        assert cache.can_claim_reads([access_a])
        cache.claim_reads([access_a])
        # The single upper-level read port is used for this cycle.
        assert not cache.can_claim_reads([access_b])
        cache.begin_cycle(11)
        assert cache.can_claim_reads([access_b])


class TestPrefetchFirstPair:
    def test_prefetches_other_operand_of_first_consumer(self):
        cache = RegisterFileCache(fetch_policy=PrefetchFirstPair(),
                                  caching_policy=NonBypassCaching())
        window, scoreboard = _window()
        # The issuing producer writes dest; its first consumer also needs
        # `other`, which sits only in the lower level.
        dest = _phys(50)
        scoreboard.allocate(dest, producer_seq=5)
        other, other_state = _produced_state(scoreboard, 60, ex_end=1, rf_ready=2)
        producer = RenamedInstruction(
            instruction=DynamicInstruction(seq=5, op_class=OpClass.INT_ALU,
                                           dest=INT_LOGICAL_REGISTERS[4]),
            dest=dest, sources=(),
        )
        consumer = RenamedInstruction(
            instruction=DynamicInstruction(seq=6, op_class=OpClass.INT_ALU,
                                           dest=INT_LOGICAL_REGISTERS[5],
                                           sources=(INT_LOGICAL_REGISTERS[4],
                                                    INT_LOGICAL_REGISTERS[6])),
            dest=_phys(51), sources=(dest, other),
        )
        producer_entry = window.dispatch(producer, cycle=0)
        window.dispatch(consumer, cycle=0)
        cache.on_issue(producer_entry, cycle=3, window=window, scoreboard=scoreboard)
        assert cache.prefetch_fills == 1
        assert cache.fill_in_flight(other) is not None

    def test_no_prefetch_when_operand_already_resident(self):
        cache = RegisterFileCache(fetch_policy=PrefetchFirstPair(),
                                  caching_policy=AlwaysCaching())
        window, scoreboard = _window()
        dest = _phys(50)
        scoreboard.allocate(dest, producer_seq=5)
        other, other_state = _produced_state(scoreboard, 60, ex_end=1, rf_ready=2)
        cache.writeback(other, other_state, cycle=2, window=window)
        producer = RenamedInstruction(
            instruction=DynamicInstruction(seq=5, op_class=OpClass.INT_ALU,
                                           dest=INT_LOGICAL_REGISTERS[4]),
            dest=dest, sources=(),
        )
        consumer = RenamedInstruction(
            instruction=DynamicInstruction(seq=6, op_class=OpClass.INT_ALU,
                                           dest=INT_LOGICAL_REGISTERS[5],
                                           sources=(INT_LOGICAL_REGISTERS[4],
                                                    INT_LOGICAL_REGISTERS[6])),
            dest=_phys(51), sources=(dest, other),
        )
        producer_entry = window.dispatch(producer, cycle=0)
        window.dispatch(consumer, cycle=0)
        cache.on_issue(producer_entry, cycle=3, window=window, scoreboard=scoreboard)
        assert cache.prefetch_fills == 0

    def test_fetch_on_demand_never_prefetches(self):
        cache = RegisterFileCache(fetch_policy=FetchOnDemand())
        window, scoreboard = _window()
        dest = _phys(50)
        scoreboard.allocate(dest, producer_seq=5)
        producer = RenamedInstruction(
            instruction=DynamicInstruction(seq=5, op_class=OpClass.INT_ALU,
                                           dest=INT_LOGICAL_REGISTERS[4]),
            dest=dest, sources=(),
        )
        entry = window.dispatch(producer, cycle=0)
        cache.on_issue(entry, cycle=3, window=window, scoreboard=scoreboard)
        assert cache.prefetch_fills == 0
