"""Unit tests for register-file building blocks: ports, pseudo-LRU, buses."""

import pytest

from repro.errors import ConfigurationError, RegisterFileError
from repro.regfile.bus import TransferBusSet
from repro.regfile.ports import PortSet, WriteScheduler
from repro.regfile.replacement import PseudoLRU


class TestPortSet:
    def test_limited_ports(self):
        ports = PortSet(2)
        ports.begin_cycle()
        assert ports.available(2)
        ports.claim(2)
        assert not ports.available(1)
        assert not ports.try_claim(1)
        ports.begin_cycle()
        assert ports.available(1)

    def test_unlimited_ports(self):
        ports = PortSet(None)
        ports.begin_cycle()
        ports.claim(100)
        assert ports.available(100)

    def test_over_claim_raises(self):
        ports = PortSet(1)
        ports.begin_cycle()
        ports.claim(1)
        with pytest.raises(RegisterFileError):
            ports.claim(1)

    def test_negative_request_rejected(self):
        ports = PortSet(1)
        with pytest.raises(RegisterFileError):
            ports.available(-1)

    def test_zero_ports_rejected(self):
        with pytest.raises(ConfigurationError):
            PortSet(0)


class TestWriteScheduler:
    def test_unlimited(self):
        scheduler = WriteScheduler(None)
        assert scheduler.schedule(5) == 5
        assert scheduler.schedule(5) == 5

    def test_limited_spills_to_next_cycle(self):
        scheduler = WriteScheduler(2)
        assert scheduler.schedule(5) == 5
        assert scheduler.schedule(5) == 5
        assert scheduler.schedule(5) == 6
        assert scheduler.delayed_writes == 1
        assert scheduler.total_delay_cycles == 1

    def test_reserve_exact_cycle(self):
        scheduler = WriteScheduler(1)
        assert scheduler.reserve(3)
        assert not scheduler.reserve(3)
        assert scheduler.reserve(4)

    def test_ports_free(self):
        scheduler = WriteScheduler(1)
        assert scheduler.ports_free(2)
        scheduler.schedule(2)
        assert not scheduler.ports_free(2)

    def test_forget_before_keeps_future(self):
        scheduler = WriteScheduler(1)
        scheduler.schedule(10)
        scheduler.forget_before(5)
        assert not scheduler.ports_free(10)
        scheduler.forget_before(11)
        assert scheduler.ports_free(10)


class TestPseudoLRU:
    def test_capacity_must_be_power_of_two(self):
        with pytest.raises(ConfigurationError):
            PseudoLRU(capacity=6)

    def test_insert_until_full_no_eviction(self):
        lru = PseudoLRU(capacity=4)
        for key in "abcd":
            assert lru.insert(key) is None
        assert lru.full and len(lru) == 4

    def test_eviction_of_cold_entry(self):
        lru = PseudoLRU(capacity=4)
        for key in "abcd":
            lru.insert(key)
        # Touch everything except 'b'; 'b' should be the victim.
        for key in "acd":
            lru.touch(key)
        evicted = lru.insert("e")
        assert evicted == "b"
        assert "e" in lru and "b" not in lru

    def test_reinsert_resident_key_touches(self):
        lru = PseudoLRU(capacity=2)
        lru.insert("a")
        lru.insert("b")
        assert lru.insert("a") is None     # already resident
        evicted = lru.insert("c")
        assert evicted == "b"

    def test_touch_non_resident_raises(self):
        lru = PseudoLRU(capacity=2)
        with pytest.raises(RegisterFileError):
            lru.touch("missing")

    def test_remove(self):
        lru = PseudoLRU(capacity=2)
        lru.insert("a")
        assert lru.remove("a")
        assert not lru.remove("a")
        assert "a" not in lru

    def test_capacity_one(self):
        lru = PseudoLRU(capacity=1)
        assert lru.insert("a") is None
        assert lru.insert("b") == "a"

    def test_keys_listing(self):
        lru = PseudoLRU(capacity=4)
        lru.insert("x")
        lru.insert("y")
        assert set(lru.keys()) == {"x", "y"}


class TestTransferBusSet:
    def test_unlimited_buses(self):
        buses = TransferBusSet(None, transfer_latency=2)
        assert buses.try_start_transfer(4) == 6
        assert buses.busy_count(5) == 0

    def test_limited_buses_busy(self):
        buses = TransferBusSet(1, transfer_latency=2)
        assert buses.try_start_transfer(0) == 2
        assert buses.try_start_transfer(1) is None
        assert buses.transfers_denied == 1
        assert buses.try_start_transfer(2) == 4

    def test_multiple_buses(self):
        buses = TransferBusSet(2, transfer_latency=3)
        assert buses.try_start_transfer(0) == 3
        assert buses.try_start_transfer(0) == 3
        assert buses.try_start_transfer(0) is None
        assert buses.busy_count(1) == 2

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            TransferBusSet(0)
        with pytest.raises(ConfigurationError):
            TransferBusSet(1, transfer_latency=0)

    def test_statistics(self):
        buses = TransferBusSet(1, transfer_latency=1)
        buses.try_start_transfer(0)
        stats = buses.statistics()
        assert stats["transfers_started"] == 1
