"""Unit tests for the single-banked (monolithic) register file model."""

import pytest

from repro.errors import ConfigurationError
from repro.execute.scoreboard import ValueScoreboard
from repro.isa.instruction import RegisterClass
from repro.regfile.base import OperandSource
from repro.regfile.monolithic import SingleBankedRegisterFile
from repro.rename.renamer import PhysicalRegister


def _phys(index=40):
    return PhysicalRegister(RegisterClass.INT, index)


def _state(ex_end=None, rf_ready=None):
    scoreboard = ValueScoreboard()
    register = _phys()
    state = scoreboard.allocate(register, producer_seq=0)
    if ex_end is not None:
        state.ex_end_cycle = ex_end
    if rf_ready is not None:
        state.rf_ready_cycle = rf_ready
        state.written_back = True
    return register, state


class TestConstruction:
    def test_default_bypass_matches_latency(self):
        regfile = SingleBankedRegisterFile(latency=2)
        assert regfile.read_stages == 2 and regfile.bypass_levels == 2

    def test_invalid_latency(self):
        with pytest.raises(ConfigurationError):
            SingleBankedRegisterFile(latency=0)

    def test_invalid_bypass_levels(self):
        with pytest.raises(ConfigurationError):
            SingleBankedRegisterFile(latency=1, bypass_levels=2)
        with pytest.raises(ConfigurationError):
            SingleBankedRegisterFile(latency=2, bypass_levels=0)

    def test_describe_mentions_ports(self):
        regfile = SingleBankedRegisterFile(latency=1, read_ports=3, write_ports=2)
        assert "3R" in regfile.describe() and "2W" in regfile.describe()


class TestOperandTiming:
    def test_unproduced_value_not_ready(self):
        regfile = SingleBankedRegisterFile(latency=1)
        register, state = _state()
        access = regfile.plan_operand_read(register, state, issue_cycle=10)
        assert access.source is OperandSource.NOT_READY

    def test_full_bypass_back_to_back(self):
        regfile = SingleBankedRegisterFile(latency=1, bypass_levels=1)
        register, state = _state(ex_end=9)
        # Consumer issuing at 9 executes at 10 = ex_end + 1: allowed, via bypass.
        access = regfile.plan_operand_read(register, state, issue_cycle=9)
        assert access.source is OperandSource.BYPASS
        too_early = regfile.plan_operand_read(register, state, issue_cycle=8)
        assert too_early.source is OperandSource.NOT_READY

    def test_missing_bypass_level_adds_one_cycle(self):
        regfile = SingleBankedRegisterFile(latency=2, bypass_levels=1)
        register, state = _state(ex_end=9)
        # Earliest execute is ex_end + 2 = 11, i.e. issue at 9.
        ok = regfile.plan_operand_read(register, state, issue_cycle=9)
        too_early = regfile.plan_operand_read(register, state, issue_cycle=8)
        assert ok.issuable
        assert too_early.source is OperandSource.NOT_READY

    def test_reads_come_from_file_once_written(self):
        regfile = SingleBankedRegisterFile(latency=1)
        register, state = _state(ex_end=5, rf_ready=7)
        from_bypass = regfile.plan_operand_read(register, state, issue_cycle=6)
        from_file = regfile.plan_operand_read(register, state, issue_cycle=7)
        assert from_bypass.source is OperandSource.BYPASS
        assert from_file.source is OperandSource.FILE


class TestPorts:
    def _file_access(self, regfile, issue_cycle=10):
        register, state = _state(ex_end=1, rf_ready=2)
        return regfile.plan_operand_read(register, state, issue_cycle=issue_cycle)

    def test_read_port_exhaustion(self):
        regfile = SingleBankedRegisterFile(latency=1, read_ports=2)
        regfile.begin_cycle(10)
        accesses = [self._file_access(regfile) for _ in range(2)]
        assert regfile.can_claim_reads(accesses)
        regfile.claim_reads(accesses)
        more = [self._file_access(regfile)]
        assert not regfile.can_claim_reads(more)
        assert regfile.read_port_stalls == 1
        regfile.begin_cycle(11)
        assert regfile.can_claim_reads(more)

    def test_bypass_accesses_do_not_use_ports(self):
        regfile = SingleBankedRegisterFile(latency=1, read_ports=1)
        regfile.begin_cycle(6)
        register, state = _state(ex_end=5)
        access = regfile.plan_operand_read(register, state, issue_cycle=5)
        assert access.source is OperandSource.BYPASS
        assert regfile.can_claim_reads([access, access, access])

    def test_write_port_contention_delays_rf_ready(self):
        regfile = SingleBankedRegisterFile(latency=1, write_ports=1)
        register, state = _state(ex_end=5)
        window = None
        first = regfile.writeback(_phys(41), state, cycle=6, window=window)
        second = regfile.writeback(_phys(42), state, cycle=6, window=window)
        assert first == 6 and second == 7

    def test_statistics_counters(self):
        regfile = SingleBankedRegisterFile(latency=1, read_ports=4)
        regfile.begin_cycle(10)
        access = self._file_access(regfile)
        regfile.claim_reads([access])
        stats = regfile.statistics()
        assert stats["reads_from_file"] == 1
