"""Unit tests for the renaming substrate (free list, map table, renamer)."""

import pytest

from repro.errors import ConfigurationError, RenameError
from repro.isa.instruction import (
    DynamicInstruction,
    FP_LOGICAL_REGISTERS,
    INT_LOGICAL_REGISTERS,
    RegisterClass,
)
from repro.isa.opcodes import OpClass
from repro.rename.free_list import FreeList
from repro.rename.map_table import MapTable
from repro.rename.renamer import PhysicalRegister, Renamer


class TestFreeList:
    def test_allocate_release_cycle(self):
        free = FreeList(range(4))
        registers = [free.allocate() for _ in range(4)]
        assert free.empty
        for register in registers:
            free.release(register)
        assert len(free) == 4

    def test_underflow(self):
        free = FreeList([])
        with pytest.raises(RenameError):
            free.allocate()

    def test_double_release_rejected(self):
        free = FreeList(range(2))
        register = free.allocate()
        free.release(register)
        with pytest.raises(RenameError):
            free.release(register)

    def test_foreign_register_rejected(self):
        free = FreeList(range(2))
        with pytest.raises(RenameError):
            free.release(99)

    def test_valid_registers_can_be_released_even_if_not_initially_free(self):
        free = FreeList(range(2, 4), valid_registers=range(4))
        free.release(0)
        assert free.contains(0)

    def test_duplicates_rejected(self):
        with pytest.raises(ConfigurationError):
            FreeList([1, 1, 2])

    def test_snapshot_restore(self):
        free = FreeList(range(3))
        snapshot = free.snapshot()
        free.allocate()
        free.restore(snapshot)
        assert len(free) == 3


class TestMapTable:
    def test_lookup_unmapped_raises(self):
        table = MapTable()
        with pytest.raises(RenameError):
            table.lookup(INT_LOGICAL_REGISTERS[0])

    def test_update_returns_previous(self):
        table = MapTable({INT_LOGICAL_REGISTERS[0]: 5})
        assert table.update(INT_LOGICAL_REGISTERS[0], 7) == 5
        assert table.lookup(INT_LOGICAL_REGISTERS[0]) == 7

    def test_checkpoint_restore(self):
        table = MapTable({INT_LOGICAL_REGISTERS[0]: 5})
        checkpoint = table.checkpoint()
        table.update(INT_LOGICAL_REGISTERS[0], 9)
        table.restore(checkpoint)
        assert table.lookup(INT_LOGICAL_REGISTERS[0]) == 5

    def test_mapped_physical_registers(self):
        table = MapTable({INT_LOGICAL_REGISTERS[0]: 5, INT_LOGICAL_REGISTERS[1]: 6})
        assert table.mapped_physical_registers() == {5, 6}


def _alu(seq, dest, sources=()):
    return DynamicInstruction(seq=seq, op_class=OpClass.INT_ALU,
                              dest=INT_LOGICAL_REGISTERS[dest],
                              sources=tuple(INT_LOGICAL_REGISTERS[s] for s in sources))


class TestRenamer:
    def test_requires_more_physical_than_logical(self):
        with pytest.raises(ConfigurationError):
            Renamer(num_int_physical=32, num_fp_physical=128)

    def test_rename_allocates_new_destination(self):
        renamer = Renamer(64, 64)
        before = renamer.current_mapping(INT_LOGICAL_REGISTERS[1])
        renamed = renamer.rename(_alu(0, dest=1, sources=(2, 3)))
        after = renamer.current_mapping(INT_LOGICAL_REGISTERS[1])
        assert renamed.dest == after
        assert renamed.previous_dest == before
        assert after != before

    def test_sources_use_current_mapping(self):
        renamer = Renamer(64, 64)
        first = renamer.rename(_alu(0, dest=1))
        second = renamer.rename(_alu(1, dest=2, sources=(1,)))
        assert second.sources[0] == first.dest

    def test_free_list_exhaustion(self):
        renamer = Renamer(34, 34)   # only 2 spare registers per class
        renamer.rename(_alu(0, dest=1))
        renamer.rename(_alu(1, dest=2))
        assert not renamer.can_rename(_alu(2, dest=3))
        with pytest.raises(RenameError):
            renamer.rename(_alu(2, dest=3))

    def test_commit_releases_previous_mapping(self):
        renamer = Renamer(34, 34)
        first = renamer.rename(_alu(0, dest=1))
        free_before = renamer.free_count(RegisterClass.INT)
        released = renamer.commit(first)
        assert released == first.previous_dest
        assert renamer.free_count(RegisterClass.INT) == free_before + 1

    def test_commit_without_destination_releases_nothing(self):
        renamer = Renamer(64, 64)
        branch = DynamicInstruction(seq=0, op_class=OpClass.BRANCH,
                                    sources=(INT_LOGICAL_REGISTERS[1],))
        renamed = renamer.rename(branch)
        assert renamer.commit(renamed) is None

    def test_squash_restores_mapping_and_free_list(self):
        renamer = Renamer(64, 64)
        before = renamer.current_mapping(INT_LOGICAL_REGISTERS[1])
        free_before = renamer.free_count(RegisterClass.INT)
        renamed = renamer.rename(_alu(0, dest=1))
        renamer.squash(renamed)
        assert renamer.current_mapping(INT_LOGICAL_REGISTERS[1]) == before
        assert renamer.free_count(RegisterClass.INT) == free_before

    def test_squash_out_of_order_rejected(self):
        renamer = Renamer(64, 64)
        first = renamer.rename(_alu(0, dest=1))
        renamer.rename(_alu(1, dest=1))
        with pytest.raises(RenameError):
            renamer.squash(first)

    def test_checkpoint_restore_roundtrip(self):
        renamer = Renamer(64, 64)
        checkpoint = renamer.checkpoint()
        renamer.rename(_alu(0, dest=1))
        renamer.rename(_alu(1, dest=2))
        renamer.restore(checkpoint)
        assert renamer.free_count(RegisterClass.INT) == 64 - 32

    def test_restore_unknown_checkpoint(self):
        renamer = Renamer(64, 64)
        with pytest.raises(RenameError):
            renamer.restore(123)

    def test_fp_and_int_pools_are_independent(self):
        renamer = Renamer(34, 64)
        fp_inst = DynamicInstruction(seq=0, op_class=OpClass.FP_ALU,
                                     dest=FP_LOGICAL_REGISTERS[1])
        renamer.rename(fp_inst)
        assert renamer.free_count(RegisterClass.INT) == 2
        assert renamer.free_count(RegisterClass.FP) == 31

    def test_in_use_registers(self):
        renamer = Renamer(64, 64)
        assert renamer.in_use_registers(RegisterClass.INT) == 32
        renamer.rename(_alu(0, dest=1))
        assert renamer.in_use_registers(RegisterClass.INT) == 33

    def test_physical_register_str(self):
        assert str(PhysicalRegister(RegisterClass.INT, 3)) == "p3"
        assert str(PhysicalRegister(RegisterClass.FP, 3)) == "pf3"
