"""The resilience layer: retries, deadlines, backpressure, quarantine.

Client-side policy is tested with injected clocks/sleeps (no real
waiting); service-side behaviour runs against real in-process
:class:`ServiceApp` instances.
"""

from __future__ import annotations

import json
import os
import random

import pytest

from repro.chaos import seams
from repro.chaos.faults import Fault, FaultInjector
from repro.service import ServiceApp
from repro.service.client import ServiceClient, ServiceError
from repro.service.jobs import COMPLETED, FAILED, RUNNING, Job, JobStore
from repro.service.spec import ApiError, validate_submission
from repro.storage.sharded import ShardedStore


@pytest.fixture(autouse=True)
def clean_seams():
    seams.uninstall()
    yield
    seams.uninstall()


def make_client(**kwargs) -> ServiceClient:
    kwargs.setdefault("_sleep", lambda _s: None)
    kwargs.setdefault("_rng", random.Random(0))
    return ServiceClient("http://127.0.0.1:1", **kwargs)


class TestClientRetries:
    def _flaky(self, client, failures, error):
        """Stub transport: raise ``error`` for the first N calls."""
        calls = {"n": 0}

        def fake_request_once(method, path, payload=None, raw=False):
            calls["n"] += 1
            if calls["n"] <= failures:
                raise error
            return {"ok": True}

        client._request_once = fake_request_once
        return calls

    def test_unreachable_is_retried_then_succeeds(self):
        client = make_client(retries=3)
        calls = self._flaky(client, 2, ServiceError("nope"))
        assert client.health() == {"ok": True}
        assert calls["n"] == 3
        assert client.retried == 2

    def test_503_overloaded_is_retried(self):
        client = make_client(retries=2)
        error = ServiceError("full", code="overloaded", status=503,
                             retry_after=0.0)
        calls = self._flaky(client, 1, error)
        assert client.health() == {"ok": True}
        assert calls["n"] == 2

    def test_non_transient_errors_are_not_retried(self):
        client = make_client(retries=5)
        error = ServiceError("bad spec", code="invalid_spec", status=422)
        calls = self._flaky(client, 99, error)
        with pytest.raises(ServiceError, match="bad spec"):
            client.health()
        assert calls["n"] == 1
        assert client.retried == 0

    def test_retries_exhausted_raises_last_error(self):
        client = make_client(retries=2)
        calls = self._flaky(client, 99, ServiceError("down"))
        with pytest.raises(ServiceError, match="down"):
            client.health()
        assert calls["n"] == 3  # 1 try + 2 retries

    def test_retry_budget_bounds_wall_clock(self):
        clock = {"now": 0.0}

        def fake_clock():
            clock["now"] += 100.0  # every attempt "takes" 100s
            return clock["now"]

        client = make_client(retries=50, retry_budget_s=150.0,
                             _clock=fake_clock)
        calls = self._flaky(client, 99, ServiceError("down"))
        with pytest.raises(ServiceError):
            client.health()
        assert calls["n"] <= 3  # budget, not retry count, stopped it

    def test_server_retry_after_is_the_delay_floor(self):
        delays = []
        client = make_client(retries=1, _sleep=delays.append)
        error = ServiceError("full", code="overloaded", status=503,
                             retry_after=1.5)
        self._flaky(client, 1, error)
        client.health()
        assert delays == [1.5]

    def test_full_jitter_delay_within_envelope(self):
        delays = []
        client = make_client(retries=3, retry_base=0.1, retry_cap=0.3,
                             _sleep=delays.append)
        self._flaky(client, 3, ServiceError("down"))
        client.health()
        assert len(delays) == 3
        for attempt, delay in enumerate(delays):
            assert 0.0 <= delay <= min(0.3, 0.1 * (2 ** attempt))


class TestWatchUnreachable:
    def _client_with_status_script(self, script):
        """``script`` is a list of records or exceptions, served in order."""
        client = make_client(retries=0)
        calls = {"n": 0}

        def fake_status(job_id):
            index = min(calls["n"], len(script) - 1)
            calls["n"] += 1
            entry = script[index]
            if isinstance(entry, Exception):
                raise entry
            return entry

        client.status = fake_status
        return client, calls

    def test_transient_unreachable_is_absorbed(self):
        done = {"id": "j1", "state": "completed", "points": {"completed": 1}}
        client, calls = self._client_with_status_script([
            ServiceError("refused"),
            ServiceError("refused"),
            done,
        ])
        record = client.watch("j1", interval=0.001, _sleep=lambda _s: None)
        assert record["state"] == "completed"
        assert calls["n"] == 3

    def test_continuous_unreachable_eventually_raises(self):
        client, _calls = self._client_with_status_script([
            ServiceError("refused"),
        ])
        clock = {"now": 0.0}

        def fake_clock():
            clock["now"] += 30.0
            return clock["now"]

        with pytest.raises(ServiceError, match="refused"):
            client.watch("j1", interval=0.001, unreachable_timeout=60.0,
                         _sleep=lambda _s: None, _clock=fake_clock)

    def test_non_transport_errors_surface_immediately(self):
        client, calls = self._client_with_status_script([
            ServiceError("gone", code="job_not_found", status=404),
        ])
        with pytest.raises(ServiceError, match="gone"):
            client.watch("j1", interval=0.001, _sleep=lambda _s: None)
        assert calls["n"] == 1


class TestDeadlines:
    def test_deadline_s_validated(self):
        with pytest.raises(ApiError) as caught:
            validate_submission({
                "points": [{"benchmark": "gcc",
                            "config": {"max_instructions": 300}}],
                "deadline_s": -1,
            })
        assert caught.value.status == 422

    def test_deadline_round_trips_through_the_plan(self):
        plan = validate_submission({
            "points": [{"benchmark": "gcc",
                        "config": {"max_instructions": 300}}],
            "deadline_s": 12.5,
        })
        assert plan.deadline_s == 12.5
        assert plan.spec["deadline_s"] == 12.5

    def test_expired_deadline_fails_before_starting(self, tmp_path):
        app = ServiceApp(cache_dir=str(tmp_path), jobs=1, job_concurrency=1)
        # Submit first, then start: the deadline burns down while queued.
        job = app.submit({
            "points": [{"benchmark": "gcc",
                        "config": {"max_instructions": 300}}],
            "deadline_s": 1e-6,
        })
        app.start()
        try:
            assert _wait_terminal(app, job.id, timeout=30.0)
            record = app.get_job(job.id)
            assert record.state == FAILED
            assert record.error["code"] == "deadline_exceeded"
            assert app.deadline_failures >= 1
        finally:
            app.stop(drain=True, timeout=30.0)


def _wait_terminal(app, job_id, timeout):
    import time

    end = time.monotonic() + timeout
    while time.monotonic() < end:
        job = app.get_job(job_id)
        if job is not None and job.terminal:
            return True
        time.sleep(0.02)
    return False


class TestOverload:
    def test_full_queue_rejects_with_structured_503(self, tmp_path):
        # The app is never started: submissions stay queued, so the
        # depth cap is hit deterministically.
        app = ServiceApp(cache_dir=str(tmp_path), max_queue_depth=1)
        spec = {"points": [{"benchmark": "gcc",
                            "config": {"max_instructions": 300}}]}
        app.submit(spec)
        with pytest.raises(ApiError) as caught:
            app.submit(spec)
        assert caught.value.status == 503
        assert caught.value.code == "overloaded"
        assert caught.value.retry_after is not None
        assert app.rejected_overloaded == 1
        payload = caught.value.to_dict()
        assert payload["error"]["retry_after"] == caught.value.retry_after


class TestStickyTerminalMarks:
    def test_first_terminal_mark_wins(self):
        job = Job(id="j1", spec={})
        assert job.mark_completed({"kind": "points"}, {"executed": 1})
        assert not job.mark_failed("deadline_exceeded", "too late")
        assert job.state == COMPLETED
        assert job.error is None

    def test_watchdog_failure_blocks_late_completion(self):
        job = Job(id="j2", spec={})
        assert job.mark_failed("deadline_exceeded", "too late")
        assert not job.mark_completed({"kind": "points"}, {})
        assert job.state == FAILED
        assert job.error["code"] == "deadline_exceeded"

    def test_fault_history_is_bounded(self):
        job = Job(id="j3", spec={})
        for index in range(100):
            job.record_fault("crash", f"boom {index}")
        from repro.service.jobs import FAULT_HISTORY_LIMIT

        assert len(job.fault_history) == FAULT_HISTORY_LIMIT
        assert job.fault_history[-1]["detail"] == "boom 99"

    def test_attempts_and_history_round_trip(self):
        job = Job(id="j4", spec={}, attempts=2)
        job.record_fault("lease_expired", replica="r1")
        clone = Job.from_dict(job.to_dict())
        assert clone.attempts == 2
        assert clone.fault_history[0]["event"] == "lease_expired"

    def test_old_records_without_new_fields_still_load(self):
        payload = Job(id="j5", spec={}).to_dict()
        del payload["attempts"]
        del payload["fault_history"]
        clone = Job.from_dict(payload)
        assert clone.attempts == 0
        assert clone.fault_history == []


class TestPoisonQuarantine:
    def test_quarantine_writes_full_record(self, tmp_path):
        store = JobStore(str(tmp_path))
        job = Job(id="badjob", spec={"points": []}, state=RUNNING,
                  attempts=3)
        job.record_fault("crash", "synthetic")
        job.mark_failed("poisoned", "quarantined after 3 attempts")
        store.quarantine_job(job)
        path = os.path.join(str(tmp_path), "jobs", "quarantine",
                            "badjob.json")
        with open(path, "r", encoding="utf-8") as handle:
            record = json.load(handle)
        assert record["error"]["code"] == "poisoned"
        assert record["fault_history"]
        assert store.quarantined == 1
        # The primary record stays, terminal, for /jobs queries.
        primary = store.load("badjob")
        assert primary is not None
        assert primary.state == FAILED


class TestEnospcDegradation:
    def test_store_degrades_to_read_only(self, tmp_path):
        store = ShardedStore(str(tmp_path / "store"), num_shards=1)
        store.put("k1", b"v1")
        injector = FaultInjector([
            Fault(seam="storage.append", action="enospc", count=None),
        ])
        seams.install(injector)
        try:
            store.put("k2", b"v2")  # absorbed: flips read-only
        finally:
            seams.uninstall()
        assert store.read_only
        assert store.stats()["read_only"] == 1
        assert store.stats()["write_errors"] >= 1
        # Reads keep working; writes are silently skipped, not raised.
        assert store.get("k1") == b"v1"
        store.put("k3", b"v3")
        assert store.delete("k1") is False

    def test_job_store_save_absorbs_enospc(self, tmp_path):
        store = JobStore(str(tmp_path))
        job = Job(id="j1", spec={})
        injector = FaultInjector([
            Fault(seam="jobs.save", action="enospc", count=None),
        ])
        seams.install(injector)
        try:
            store.save(job)  # must not raise
        finally:
            seams.uninstall()
        assert store.save_errors == 1
        store.save(job)  # healthy again once the fault is gone
        assert store.load("j1") is not None


class TestComponentHealth:
    def test_healthy_components(self, tmp_path):
        app = ServiceApp(cache_dir=str(tmp_path), max_queue_depth=4)
        health = app.health()
        assert health["status"] == "ok"
        assert health["chaos"] is False
        components = health["components"]
        assert components["storage"]["status"] == "ok"
        assert components["storage"]["writable"] is True
        assert components["queue"]["status"] == "ok"
        assert components["queue"]["max_depth"] == 4
        assert components["pool"]["status"] == "ok"

    def test_degraded_storage_degrades_health(self, tmp_path):
        app = ServiceApp(cache_dir=str(tmp_path))
        app.job_store.save_errors = 1
        health = app.health()
        assert health["status"] == "degraded"
        assert health["components"]["storage"]["status"] == "degraded"

    def test_saturated_queue_degrades_health(self, tmp_path):
        app = ServiceApp(cache_dir=str(tmp_path), max_queue_depth=1)
        app.submit({"points": [{"benchmark": "gcc",
                                "config": {"max_instructions": 300}}]})
        health = app.health()
        assert health["status"] == "degraded"
        assert health["components"]["queue"]["status"] == "saturated"
