"""Sampling subsystem: spec validation, window placement, estimates, CLI.

The checkpoint/resume half of the subsystem is covered by
``tests/test_sampling_checkpoint.py``; this file locks down the spec
surface (the same validator gates the runner flag and the service API),
the deterministic window plan, and the sampled estimate itself.
"""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.experiments.store import simulation_key
from repro.pipeline.config import ProcessorConfig
from repro.pipeline.stats import SimulationStats
from repro.sampling import SamplingSpec, parse_sampling, sampled_simulate
from repro.sampling.__main__ import main as sampling_main
from repro.sampling.engine import (
    confidence_interval,
    event_offsets,
    t_critical,
    window_plan,
)
from repro.trace import record_trace, replay_simulate
from repro.validate.differential import validation_matrix
from repro.workloads.profiles import get_profile
from repro.workloads.synthetic import SyntheticWorkload

N = 2000


def _stream(benchmark: str, count: int):
    return SyntheticWorkload(get_profile(benchmark)).instructions(count)


def _workload_id(benchmark: str, count: int) -> dict:
    return {"kind": "sampling-test", "benchmark": benchmark,
            "instructions": count}


@pytest.fixture(scope="module")
def gcc_trace():
    config = ProcessorConfig(max_instructions=N)
    return record_trace("gcc", _stream("gcc", N), config, _workload_id("gcc", N))


class TestSamplingSpec:
    def test_defaults(self):
        spec = SamplingSpec(stride=2000, window=200)
        assert spec.effective_warmup == 200  # defaults to one window
        assert spec.confidence == 0.95
        assert spec.label() == "2000:200:200"

    @pytest.mark.parametrize("kwargs", [
        {"stride": 0, "window": 1},
        {"stride": -5, "window": 1},
        {"stride": 10, "window": 0},
        {"stride": 10, "window": 20},            # window > stride
        {"stride": 10, "window": 5, "warmup": -1},
        {"stride": 10, "window": 5, "confidence": 0.8},
        {"stride": 10, "window": 5, "target_half_width": 0.0},
        {"stride": 10, "window": 5, "target_half_width": 1.5},
        {"stride": 10, "window": 5, "min_windows": 1},
        {"stride": 10, "window": 5, "min_windows": 4, "max_windows": 3},
        {"stride": True, "window": 5},           # bool is not an int here
    ])
    def test_invalid_specs_rejected(self, kwargs):
        with pytest.raises(ConfigurationError):
            SamplingSpec(**kwargs)

    def test_payload_round_trip(self):
        spec = SamplingSpec(stride=1500, window=400, warmup=600,
                            confidence=0.99, target_half_width=0.05,
                            min_windows=4, max_windows=20)
        assert SamplingSpec.from_payload(spec.to_payload()) == spec

    def test_from_payload_rejects_unknown_and_missing_fields(self):
        with pytest.raises(ConfigurationError, match="unknown sampling field"):
            SamplingSpec.from_payload({"stride": 10, "window": 5, "bogus": 1})
        with pytest.raises(ConfigurationError, match="missing required"):
            SamplingSpec.from_payload({"stride": 10})
        with pytest.raises(ConfigurationError, match="JSON object"):
            SamplingSpec.from_payload("1000:100")

    @pytest.mark.parametrize("text, expected", [
        ("2000:200", SamplingSpec(stride=2000, window=200)),
        ("2000:200:400", SamplingSpec(stride=2000, window=200, warmup=400)),
        ("1500:400:0", SamplingSpec(stride=1500, window=400, warmup=0)),
    ])
    def test_parse_sampling(self, text, expected):
        assert parse_sampling(text) == expected

    @pytest.mark.parametrize("text", ["2000", "a:b", "10:5:3:1", "", "10:", 42])
    def test_parse_sampling_rejects_malformed(self, text):
        with pytest.raises(ConfigurationError):
            parse_sampling(text)


class TestEstimator:
    def test_t_critical_table_and_normal_tail(self):
        assert t_critical(0.95, 2) == pytest.approx(12.706)
        assert t_critical(0.95, 31) == pytest.approx(2.042)
        assert t_critical(0.95, 200) == pytest.approx(1.960)
        with pytest.raises(ConfigurationError):
            t_critical(0.95, 1)  # df = 0: no interval from one window
        with pytest.raises(ConfigurationError):
            t_critical(0.85, 10)  # no committed table

    def test_confidence_interval_known_values(self):
        mean, half_width = confidence_interval([1.0, 1.0, 1.0, 1.0], 0.95)
        assert mean == 1.0 and half_width == 0.0
        mean, half_width = confidence_interval([1.0, 3.0], 0.95)
        assert mean == 2.0
        # s = sqrt(2), t(df=1) = 12.706 -> 12.706 * sqrt(2/2) = 12.706
        assert half_width == pytest.approx(12.706)


class TestWindowPlan:
    def test_windows_snap_to_event_boundaries(self, gcc_trace):
        spec = SamplingSpec(stride=500, window=100)
        plan = window_plan(gcc_trace, spec)
        offsets = event_offsets(gcc_trace)
        assert len(plan) >= 2
        starts = [start for _, start in plan]
        assert starts == sorted(set(starts))  # strictly increasing
        for index, start in plan:
            assert offsets[index] == start
            assert start + spec.window <= len(gcc_trace.instructions)
        # Window k targets k*stride and snaps forward, never backward.
        for k, (_, start) in enumerate(plan):
            assert start >= k * spec.stride or k > 0

    def test_too_short_trace_is_a_configuration_error(self, gcc_trace):
        with pytest.raises(ConfigurationError, match="too short"):
            window_plan(gcc_trace, SamplingSpec(stride=N, window=500))


class TestSampledSimulate:
    def test_deterministic_and_carries_interval(self, gcc_trace):
        factory = validation_matrix()["rfc-non-bypass"]
        config = ProcessorConfig(max_instructions=N)
        spec = SamplingSpec(stride=500, window=100, warmup=100)
        first = sampled_simulate(gcc_trace, factory, config, spec,
                                 benchmark_name="gcc")
        second = sampled_simulate(gcc_trace, factory, config, spec,
                                  benchmark_name="gcc")
        assert first.to_dict() == second.to_dict()
        sampling = first.sampling
        assert sampling is not None
        assert sampling["spec"] == spec.to_payload()
        assert sampling["windows"] == len(sampling["window_ipcs"]) >= 2
        assert sampling["total_instructions"] == N
        assert sampling["detailed_instructions"] == (
            sampling["windows"] * spec.window
        )
        assert first.committed_instructions == sampling["detailed_instructions"]
        low = sampling["ipc_mean"] - sampling["ci_half_width"]
        high = sampling["ipc_mean"] + sampling["ci_half_width"]
        assert 0.0 < low <= high

    def test_max_windows_caps_the_plan(self, gcc_trace):
        factory = validation_matrix()["monolithic-1c"]
        config = ProcessorConfig(max_instructions=N)
        spec = SamplingSpec(stride=500, window=100, warmup=0,
                            min_windows=2, max_windows=2)
        stats = sampled_simulate(gcc_trace, factory, config, spec,
                                 benchmark_name="gcc")
        assert stats.sampling["windows"] == 2

    def test_stats_round_trip_preserves_sampling(self, gcc_trace):
        factory = validation_matrix()["monolithic-1c"]
        config = ProcessorConfig(max_instructions=N)
        spec = SamplingSpec(stride=500, window=100)
        sampled = sampled_simulate(gcc_trace, factory, config, spec,
                                   benchmark_name="gcc")
        payload = sampled.to_dict()
        assert "sampling" in payload
        restored = SimulationStats.from_dict(payload)
        assert restored.sampling == sampled.sampling
        assert restored.to_dict() == payload

    def test_exact_stats_payload_has_no_sampling_key(self, gcc_trace):
        """Fixture stability: exact runs serialize exactly as before the
        sampling field existed."""
        factory = validation_matrix()["monolithic-1c"]
        config = ProcessorConfig(max_instructions=N)
        exact = replay_simulate(gcc_trace, factory, config,
                                benchmark_name="gcc")
        assert "sampling" not in exact.to_dict()

    def test_sampled_store_key_differs_from_exact(self):
        config = ProcessorConfig(max_instructions=N)
        spec = SamplingSpec(stride=500, window=100)
        exact_key = simulation_key("gcc", "mono-1c", config, 0)
        sampled_key = simulation_key("gcc", "mono-1c", config, 0,
                                     sampling=spec.to_payload())
        assert exact_key != sampled_key
        # Omit-when-None: passing sampling=None is the pre-sampling key.
        assert simulation_key("gcc", "mono-1c", config, 0,
                              sampling=None) == exact_key


class TestSamplingCli:
    def test_no_arguments_prints_help_and_exits_zero(self, capsys):
        assert sampling_main([]) == 0
        assert "--list" in capsys.readouterr().out

    def test_list_exits_zero(self, capsys):
        assert sampling_main(["--list"]) == 0
        out = capsys.readouterr().out
        for knob in ("stride", "window", "warmup", "confidence",
                     "target_half_width", "min_windows", "max_windows"):
            assert knob in out

    def test_valid_spec_prints_payload(self, capsys):
        assert sampling_main(["--spec", "1500:400:600"]) == 0
        out = capsys.readouterr().out
        assert '"stride": 1500' in out and '"warmup": 600' in out

    @pytest.mark.parametrize("text", ["400:1500", "nope", "10"])
    def test_invalid_spec_exits_two_without_traceback(self, text, capsys):
        assert sampling_main(["--spec", text]) == 2
        captured = capsys.readouterr()
        assert captured.err.startswith("error:")
        assert "Traceback" not in captured.err
