"""Trace checkpoints: round-trip, quarantine, and mid-stream resume.

Locks down the two properties the checkpoint docstring promises:

* a resumed run's commit stream is exactly the ``instructions[pos:]``
  suffix of the full run's stream, and merging the resumed run's final
  architectural snapshot over the checkpoint's ``register_state``
  recovers the full run's final state;
* stored checkpoints survive a disk round-trip through the sharded
  :class:`TraceStore`, and corrupt or mismatched entries load as cache
  misses (``None``), never as errors.
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.errors import SimulationError
from repro.pipeline.config import ProcessorConfig
from repro.sampling import SamplingSpec
from repro.sampling.checkpoint import (
    TraceCheckpoint,
    build_checkpoint,
    build_checkpoints,
    checkpoint_key,
    load_checkpoint,
    resume_simulate,
    store_checkpoint,
)
from repro.sampling.engine import event_offsets, window_plan
from repro.trace import record_trace, replay_simulate
from repro.trace.store import TraceStore
from repro.validate.differential import validation_matrix
from repro.validate.observer import CommitObserver
from repro.workloads.profiles import get_profile
from repro.workloads.synthetic import SyntheticWorkload

N = 1500


@pytest.fixture(scope="module")
def gcc_trace():
    config = ProcessorConfig(max_instructions=N)
    stream = SyntheticWorkload(get_profile("gcc")).instructions(N)
    return record_trace("gcc", stream, config,
                        {"kind": "checkpoint-test", "benchmark": "gcc",
                         "instructions": N})


class TestBuild:
    def test_position_snaps_forward_to_an_event_boundary(self, gcc_trace):
        checkpoint = build_checkpoint(gcc_trace, 700, warmup=200)
        offsets = event_offsets(gcc_trace)
        assert checkpoint.position in offsets
        assert checkpoint.position >= 700
        assert offsets[checkpoint.event_index] == checkpoint.position
        assert checkpoint.warmup_start == checkpoint.position - 200
        assert checkpoint.trace_key == gcc_trace.key

    def test_register_state_is_the_youngest_writer_map(self, gcc_trace):
        checkpoint = build_checkpoint(gcc_trace, 700, warmup=200)
        expected = {}
        for instruction in gcc_trace.instructions[:checkpoint.position]:
            if instruction.dest is not None:
                expected[str(instruction.dest)] = instruction.seq
        assert checkpoint.register_state == expected

    def test_past_the_end_is_an_error(self, gcc_trace):
        with pytest.raises(SimulationError, match="past the last fetch event"):
            build_checkpoint(gcc_trace, N + 1, warmup=0)
        with pytest.raises(SimulationError, match="negative"):
            build_checkpoint(gcc_trace, -1, warmup=0)

    def test_build_checkpoints_matches_the_window_plan(self, gcc_trace):
        spec = SamplingSpec(stride=400, window=100, warmup=150)
        checkpoints = build_checkpoints(gcc_trace, spec)
        plan = window_plan(gcc_trace, spec)
        assert [(c.event_index, c.position) for c in checkpoints] == plan
        for checkpoint in checkpoints:
            assert checkpoint.warmup_start == max(0, checkpoint.position - 150)


class TestSerialization:
    def test_payload_round_trip(self, gcc_trace):
        checkpoint = build_checkpoint(gcc_trace, 500, warmup=100)
        assert TraceCheckpoint.from_payload(checkpoint.to_payload()) == checkpoint

    def test_schema_mismatch_raises(self, gcc_trace):
        payload = build_checkpoint(gcc_trace, 500, warmup=100).to_payload()
        payload["schema"] = 999
        with pytest.raises(SimulationError, match="schema"):
            TraceCheckpoint.from_payload(payload)
        with pytest.raises(SimulationError):
            TraceCheckpoint.from_payload("not a dict")

    @pytest.mark.parametrize("mutation", [
        {"position": -1},
        {"warmup_start": 10_000_000},
        {"register_state": None},
    ])
    def test_malformed_payloads_raise(self, gcc_trace, mutation):
        payload = build_checkpoint(gcc_trace, 500, warmup=100).to_payload()
        payload.update(mutation)
        with pytest.raises(SimulationError):
            TraceCheckpoint.from_payload(payload)


class TestStoreRoundTrip:
    def test_store_and_load_through_a_fresh_store(self, gcc_trace, tmp_path):
        checkpoint = build_checkpoint(gcc_trace, 500, warmup=100)
        store = TraceStore(cache_dir=str(tmp_path))
        store_checkpoint(store, checkpoint)
        assert load_checkpoint(store, gcc_trace.key,
                               checkpoint.position) == checkpoint
        # A fresh store instance forces the disk tier.
        reopened = TraceStore(cache_dir=str(tmp_path))
        assert load_checkpoint(reopened, gcc_trace.key,
                               checkpoint.position) == checkpoint

    def test_absent_checkpoint_is_a_miss(self, gcc_trace, tmp_path):
        store = TraceStore(cache_dir=str(tmp_path))
        assert load_checkpoint(store, gcc_trace.key, 500) is None

    def test_corrupt_checkpoint_quarantines_as_miss(self, gcc_trace, tmp_path):
        checkpoint = build_checkpoint(gcc_trace, 500, warmup=100)
        store = TraceStore(cache_dir=str(tmp_path))
        store.put_payload(checkpoint.key, {"schema": 999, "garbage": True})
        assert load_checkpoint(store, gcc_trace.key,
                               checkpoint.position) is None

    def test_key_mismatched_payload_is_a_miss(self, gcc_trace, tmp_path):
        """A payload stored under the wrong content key never loads —
        the embedded (trace_key, position) must match the request."""
        checkpoint = build_checkpoint(gcc_trace, 500, warmup=100)
        store = TraceStore(cache_dir=str(tmp_path))
        other_key = checkpoint_key(gcc_trace.key, checkpoint.position + 777)
        store.put_payload(other_key, checkpoint.to_payload())
        assert load_checkpoint(store, gcc_trace.key,
                               checkpoint.position + 777) is None


class TestResume:
    @pytest.mark.parametrize("name", ["rfc-non-bypass",
                                      "monolithic-2c-full-bypass"])
    def test_resumed_commit_stream_is_the_suffix(self, gcc_trace, name):
        factory = validation_matrix()[name]
        config = ProcessorConfig(max_instructions=N)
        full_observer = CommitObserver()
        full = replay_simulate(gcc_trace, factory, config,
                               benchmark_name="gcc",
                               commit_observer=full_observer)
        assert full.committed_instructions == N

        checkpoint = build_checkpoint(gcc_trace, 700, warmup=200)
        resumed_observer = CommitObserver()
        resumed = resume_simulate(gcc_trace, checkpoint, factory, config,
                                  benchmark_name="gcc",
                                  commit_observer=resumed_observer)
        assert resumed.committed_instructions == N - checkpoint.position
        full_log = full_observer.accumulator.log
        assert (resumed_observer.accumulator.log
                == full_log[checkpoint.position:])

        merged = dict(checkpoint.register_state)
        merged.update(resumed_observer.accumulator.state_snapshot())
        assert merged == full_observer.accumulator.state_snapshot()

    def test_wrong_trace_is_rejected(self, gcc_trace):
        checkpoint = build_checkpoint(gcc_trace, 500, warmup=100)
        imposter = dataclasses.replace(checkpoint, trace_key="0" * 64)
        factory = validation_matrix()["monolithic-1c"]
        config = ProcessorConfig(max_instructions=N)
        with pytest.raises(SimulationError, match="checkpoint is for trace"):
            resume_simulate(gcc_trace, imposter, factory, config)
