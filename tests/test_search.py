"""Config-space search: spaces, objectives, the halving driver, service E2E.

The expensive end-to-end paths run tiny instruction budgets (hundreds of
instructions) and small spaces; the cache-determinism assertions (warm
re-run executes nothing, report byte-identical) are the load-bearing
part, mirroring what the CI `search` job checks against a live server.
"""

from __future__ import annotations

import json
import time

import pytest

from repro.errors import ConfigurationError
from repro.hwmodel.evaluate import area_units
from repro.pipeline.stats import SimulationStats
from repro.sampling.spec import quick_sampling
from repro.search.driver import SearchSpec, _build_points
from repro.search.objectives import (
    Constraints,
    parse_constraints,
    parse_objective,
    pareto_layers,
    rank_scores,
    select_survivors,
)
from repro.search.space import build_space
from repro.service import ServiceApp
from repro.service.jobs import COMPLETED, FAILED
from repro.service.spec import ApiError, validate_submission

# A four-candidate space small enough for real simulation in a test:
# 2R2W (4 ports), 2R3W and 3R2W (5 ports each — an exact area tie),
# and 3R3W (6 ports).
TINY_SPACE = {"kind": "single-banked", "read_ports": [2, 3],
              "write_ports": [2, 3]}


def wait_for(job_getter, timeout: float = 120.0):
    deadline = time.time() + timeout
    while time.time() < deadline:
        job = job_getter()
        if job.terminal:
            return job
        time.sleep(0.02)
    raise AssertionError("search job did not reach a terminal state in time")


@pytest.fixture
def app(tmp_path):
    service = ServiceApp(cache_dir=str(tmp_path), jobs=1, job_concurrency=2)
    service.start()
    yield service
    service.stop()


def inject_results(app: ServiceApp, spec: SearchSpec, ipc_by_label: dict) -> None:
    """Pre-store exact-rung stats so a search runs without simulating."""
    points = _build_points(spec, spec.admitted_candidates(), None)
    for point in points:
        ipc = ipc_by_label[point.architecture]
        cycles = 10_000
        stats = SimulationStats(
            benchmark=point.benchmark,
            architecture=point.architecture,
            cycles=cycles,
            committed_instructions=int(round(cycles * ipc)),
        )
        app.store.put(point.store_key(), stats)


# ----------------------------------------------------------------------
# spaces
# ----------------------------------------------------------------------


class TestSearchSpace:
    def test_single_banked_defaults(self):
        space = build_space("single-banked")
        assert space.kind == "single-banked"
        labels = [candidate.label for candidate in space.candidates]
        assert len(labels) == 9  # 3 reads x 3 writes, latency 1
        assert "1-cycle/3R2W" in labels
        assert space.dimensions["latencies"] == [1]

    def test_latency_two_uses_bypass_labels(self):
        space = build_space({"kind": "single-banked", "read_ports": [3],
                             "write_ports": [2], "latencies": [2]})
        assert [c.label for c in space.candidates] == ["2-cycle-1byp/3R2W"]

    def test_rfc_tied_lower_writes(self):
        space = build_space("register-file-cache")
        labels = [candidate.label for candidate in space.candidates]
        # 3 reads x 2 writes x 2 buses, lower bank tied to upper writes.
        assert len(labels) == 12
        assert "rfc/4R3W2B" in labels
        assert all("L" not in label for label in labels)

    def test_rfc_explicit_lower_writes(self):
        space = build_space({"kind": "register-file-cache",
                             "read_ports": [4], "write_ports": [3],
                             "buses": [2], "lower_write_ports": [2]})
        assert [c.label for c in space.candidates] == ["rfc/4R3W2L2B"]

    def test_figure8_is_the_full_paper_sweep(self):
        space = build_space("figure8")
        labels = [candidate.label for candidate in space.candidates]
        # 9 one-cycle + 9 two-cycle + 12 RFC geometries, no duplicates.
        assert len(labels) == 30
        assert len(set(labels)) == 30
        assert space.dimensions == {}
        for chosen in ("1-cycle/3R2W", "2-cycle-1byp/3R2W", "rfc/4R3W2B"):
            assert chosen in labels

    def test_rejects_unknown_kind_and_fields(self):
        with pytest.raises(ConfigurationError, match="unknown search space kind"):
            build_space("warp-drive")
        with pytest.raises(ConfigurationError, match="unknown field"):
            build_space({"kind": "figure8", "read_ports": [2]})
        with pytest.raises(ConfigurationError, match="latencies must be 1"):
            build_space({"kind": "single-banked", "latencies": [3]})
        with pytest.raises(ConfigurationError, match="integers >= 1"):
            build_space({"kind": "single-banked", "read_ports": [0]})
        with pytest.raises(ConfigurationError, match="non-empty list"):
            build_space({"kind": "single-banked", "read_ports": []})

    def test_dimension_values_dedupe_preserving_order(self):
        space = build_space({"kind": "single-banked", "read_ports": [3, 2, 3],
                             "write_ports": [2]})
        assert space.dimensions["read_ports"] == [3, 2]
        assert len(space.candidates) == 2


# ----------------------------------------------------------------------
# objectives and constraints
# ----------------------------------------------------------------------


def score(label: str, area: float, ipc: float, feasible: bool = True) -> dict:
    return {"label": label, "area_units": area, "ipc": ipc,
            "feasible": feasible}


class TestObjectives:
    def test_parse_objective_spellings(self):
        assert parse_objective("max ipc").canonical() == "max ipc"
        assert parse_objective("MIN  Area").canonical() == "min area"
        assert parse_objective("min area_units").canonical() == "min area"
        assert parse_objective("pareto ipc-vs-area").is_pareto
        assert parse_objective("Pareto IPC vs Area").canonical() == \
            "pareto ipc-vs-area"

    def test_parse_objective_rejects_unknown(self):
        with pytest.raises(ConfigurationError, match="unknown objective"):
            parse_objective("max frequency")
        with pytest.raises(ConfigurationError, match="string expression"):
            parse_objective(42)

    def test_parse_constraints_mapping_and_strings(self):
        mapped = parse_constraints({"max_area_units": 25000, "min_ipc": 1.0})
        listed = parse_constraints(["area_units <= 25000", "ipc >= 1.0"])
        assert mapped == listed == Constraints(max_area_units=25000.0,
                                               min_ipc=1.0)
        assert parse_constraints(None) == Constraints()

    def test_parse_constraints_rejects_garbage(self):
        with pytest.raises(ConfigurationError, match="more than once"):
            parse_constraints(["area <= 1", "area_units <= 2"])
        with pytest.raises(ConfigurationError, match="unknown constraint"):
            parse_constraints({"max_power": 5})
        with pytest.raises(ConfigurationError, match="positive number"):
            parse_constraints({"min_ipc": -1})
        with pytest.raises(ConfigurationError, match="unsupported constraint"):
            parse_constraints(["ipc <= 2"])

    def test_rank_scores_scalar_objectives(self):
        scores = [score("slow-cheap", 10.0, 0.5),
                  score("fast-big", 30.0, 1.5),
                  score("fast-infeasible", 5.0, 2.0, feasible=False)]
        by_ipc = rank_scores(parse_objective("max ipc"), scores)
        assert [s["label"] for s in by_ipc] == \
            ["fast-big", "slow-cheap", "fast-infeasible"]
        by_area = rank_scores(parse_objective("min area"), scores)
        assert [s["label"] for s in by_area] == \
            ["slow-cheap", "fast-big", "fast-infeasible"]

    def test_pareto_layers_peel_and_quarantine_infeasible(self):
        scores = [score("frontier-a", 10.0, 1.0),
                  score("frontier-b", 20.0, 2.0),
                  score("dominated", 20.0, 1.0),
                  score("infeasible", 1.0, 9.0, feasible=False)]
        layers = pareto_layers(scores)
        assert [s["label"] for s in layers[0]] == ["frontier-a", "frontier-b"]
        assert [s["label"] for s in layers[1]] == ["dominated"]
        assert [s["label"] for s in layers[2]] == ["infeasible"]

    def test_select_survivors_never_splits_a_tied_layer(self):
        # Three designs tied on (area, ipc) form one frontier layer; a
        # keep=1 halving must still promote all of them.
        scores = [score("tie-a", 10.0, 1.0), score("tie-b", 10.0, 1.0),
                  score("tie-c", 10.0, 1.0), score("worse", 20.0, 0.5)]
        survivors = select_survivors(parse_objective("pareto ipc-vs-area"),
                                     scores, keep=1)
        assert sorted(survivors) == ["tie-a", "tie-b", "tie-c"]

    def test_select_survivors_scalar_keeps_top_k(self):
        scores = [score("a", 10.0, 1.0), score("b", 20.0, 2.0),
                  score("c", 30.0, 3.0)]
        assert select_survivors(parse_objective("max ipc"), scores, 2) == \
            ["c", "b"]


# ----------------------------------------------------------------------
# SearchSpec validation
# ----------------------------------------------------------------------


class TestSearchSpec:
    def test_defaults(self):
        spec = SearchSpec.from_payload({"space": "single-banked"})
        assert spec.benchmarks == ("gcc",)
        assert spec.instructions == 2000
        assert spec.rungs == 1 and spec.eta == 2 and spec.min_survivors == 2
        assert spec.objective.is_pareto

    def test_payload_round_trip_is_identical(self):
        payload = {"space": TINY_SPACE, "objective": "max ipc",
                   "constraints": ["area_units <= 99999"],
                   "benchmarks": ["gcc", "perl"], "instructions": 500,
                   "rungs": 2}
        spec = SearchSpec.from_payload(payload)
        echoed = SearchSpec.from_payload(spec.to_payload())
        assert echoed == spec
        assert echoed.to_payload() == spec.to_payload()

    def test_rejects_unknown_fields_and_bad_values(self):
        with pytest.raises(ConfigurationError, match="unknown search field"):
            SearchSpec.from_payload({"space": "figure8", "budget": 10})
        with pytest.raises(ConfigurationError, match="needs a 'space'"):
            SearchSpec.from_payload({"objective": "max ipc"})
        with pytest.raises(ConfigurationError, match="at most 3"):
            SearchSpec.from_payload({"space": "figure8", "rungs": 9})
        with pytest.raises(ConfigurationError, match="rungs must be an integer"):
            SearchSpec.from_payload({"space": "figure8", "rungs": True})
        with pytest.raises(ConfigurationError):
            SearchSpec.from_payload({"space": "figure8",
                                     "benchmarks": ["no-such-benchmark"]})

    def test_rung_ladder_is_cheap_to_exact(self):
        spec = SearchSpec.from_payload({"space": "figure8", "rungs": 2,
                                        "instructions": 4000})
        ladder = spec.rung_samplings()
        assert ladder[-1] is None
        sampled = ladder[:-1]
        assert len(sampled) == 2
        # Earlier rungs measure a smaller detailed fraction per stride.
        assert sampled[0].window < sampled[1].window
        assert all(s.window <= s.stride for s in sampled)

    def test_short_budgets_collapse_to_exact_only(self):
        spec = SearchSpec.from_payload({"space": "figure8", "rungs": 3,
                                        "instructions": 100})
        assert spec.rung_samplings() == [None]
        assert quick_sampling(100) is None


# ----------------------------------------------------------------------
# service end-to-end
# ----------------------------------------------------------------------


class TestSearchService:
    def test_submission_validation(self):
        plan = validate_submission({"search": {"space": "figure8"}})
        assert plan.kind == "search"
        assert plan.search is not None
        assert plan.spec["search"]["space"]["kind"] == "figure8"

        with pytest.raises(ApiError) as excinfo:
            validate_submission({"search": {"space": "nope"}})
        assert excinfo.value.status == 422
        assert excinfo.value.code == "invalid_search"

        with pytest.raises(ApiError) as excinfo:
            validate_submission({"search": {"space": "figure8"},
                                 "figure": "figure6"})
        assert excinfo.value.code == "invalid_spec"

        with pytest.raises(ApiError) as excinfo:
            validate_submission({"search": {"space": "figure8"},
                                 "sample": "100:10"})
        assert excinfo.value.code == "invalid_search"

    def test_search_runs_and_warm_rerun_is_byte_identical(self, app):
        request = {"search": {"space": TINY_SPACE, "instructions": 400,
                              "rungs": 1}}
        first_id = app.submit(json.loads(json.dumps(request))).id
        first = wait_for(lambda: app.get_job(first_id))
        assert first.state == COMPLETED, first.error
        report = first.result["report"]
        assert report["schema"] == 1
        assert first.counters["executed"] > 0
        assert first.counters["rungs"] == 2  # one sampled + the exact rung

        frontier_labels = [point["label"] for point in report["frontier"]]
        assert frontier_labels
        # The cheapest design is non-dominated by construction, and it is
        # also the paper's chosen single-banked point's little sibling;
        # the chosen 3R2W must not be dominated by anything cheaper here.
        assert "1-cycle/2R2W" in frontier_labels
        costs = [point["area_units"] for point in report["frontier"]]
        assert costs == sorted(costs)
        # Audit trail: every rung records its budget, scores, survivors.
        assert [entry["rung"] for entry in report["rungs"]] == [0, 1]
        assert report["rungs"][0]["budget"]["mode"] == "sampled"
        assert report["rungs"][1]["budget"]["mode"] == "exact"

        second_id = app.submit(json.loads(json.dumps(request))).id
        second = wait_for(lambda: app.get_job(second_id))
        assert second.state == COMPLETED, second.error
        assert second.counters["executed"] == 0
        assert second.counters["cached"] == first.counters["requested"]
        assert (json.dumps(second.result["report"], sort_keys=True)
                == json.dumps(report, sort_keys=True))

    def test_tied_nondominated_candidates_all_reach_the_frontier(self, app):
        # 2R3W and 3R2W price identically (5 ports each); give them equal
        # measured IPC too, so they tie exactly on (cost, value).  Both
        # must survive into the frontier — the satellite pareto bugfix.
        payload = {"space": TINY_SPACE, "instructions": 400, "rungs": 0}
        spec = SearchSpec.from_payload(payload)
        inject_results(app, spec, {
            "1-cycle/2R2W": 0.40,
            "1-cycle/2R3W": 0.50,
            "1-cycle/3R2W": 0.50,
            "1-cycle/3R3W": 0.45,
        })
        job_id = app.submit({"search": payload}).id
        job = wait_for(lambda: app.get_job(job_id))
        assert job.state == COMPLETED, job.error
        assert job.counters["executed"] == 0  # everything pre-stored
        frontier = job.result["report"]["frontier"]
        by_label = {point["label"]: point for point in frontier}
        assert "1-cycle/2R3W" in by_label and "1-cycle/3R2W" in by_label
        assert (by_label["1-cycle/2R3W"]["area_units"]
                == by_label["1-cycle/3R2W"]["area_units"])
        assert (by_label["1-cycle/2R3W"]["ipc"]
                == by_label["1-cycle/3R2W"]["ipc"])
        # 3R3W is dominated (more area, less IPC than the tied pair).
        assert "1-cycle/3R3W" not in by_label

    def test_area_constraint_prunes_and_scalar_best(self, app):
        payload = {"space": TINY_SPACE, "instructions": 400, "rungs": 0,
                   "objective": "max ipc"}
        spec = SearchSpec.from_payload(payload)
        candidates = {c.label: c for c in spec.space.candidates}
        cheap_area = area_units(candidates["1-cycle/2R2W"].geometry)
        payload["constraints"] = [f"area_units <= {cheap_area + 1}"]
        spec = SearchSpec.from_payload(payload)
        assert [c.label for c in spec.admitted_candidates()] == \
            ["1-cycle/2R2W"]
        inject_results(app, spec, {"1-cycle/2R2W": 0.40})
        job_id = app.submit({"search": payload}).id
        job = wait_for(lambda: app.get_job(job_id))
        assert job.state == COMPLETED, job.error
        report = job.result["report"]
        assert len(report["pruned_by_area"]) == 3
        assert report["best"]["label"] == "1-cycle/2R2W"
        assert [p["label"] for p in report["frontier"]] == ["1-cycle/2R2W"]

    def test_constraint_pruning_everything_fails_the_job(self, app):
        payload = {"space": TINY_SPACE, "instructions": 400,
                   "constraints": {"max_area_units": 1}}
        job_id = app.submit({"search": payload}).id
        job = wait_for(lambda: app.get_job(job_id))
        assert job.state == FAILED
        assert job.error["code"] == "execution_error"
        assert "prunes every candidate" in job.error["message"]

    def test_search_shares_the_store_with_figure_style_point_jobs(self, app):
        # A search over ground a points job already swept is a pure
        # cache hit: the candidate labels are the figure sweep's
        # architecture keys, so the store keys coincide.
        payload = {"space": {"kind": "single-banked", "read_ports": [2],
                             "write_ports": [2]},
                   "instructions": 300, "rungs": 0}
        points_spec = {"points": [{
            "benchmark": "gcc",
            "architecture": "1-cycle/2R2W",
            "factory": {"type": "SingleBankedFactory",
                        "parameters": {"latency": 1, "bypass_levels": 1,
                                       "read_ports": 2, "write_ports": 2,
                                       "name": "1-cycle single-banked"}},
            "config": {"max_instructions": 300},
        }]}
        sweep_id = app.submit(points_spec).id
        sweep = wait_for(lambda: app.get_job(sweep_id))
        assert sweep.state == COMPLETED, sweep.error
        assert sweep.counters["executed"] == 1

        job_id = app.submit({"search": payload}).id
        job = wait_for(lambda: app.get_job(job_id))
        assert job.state == COMPLETED, job.error
        assert job.counters["executed"] == 0
        assert job.counters["cached"] == 1
