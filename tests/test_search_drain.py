"""SIGTERM drain while a search job is mid-rung.

A real ``python -m repro.service serve`` process is SIGTERMed while a
config-space search is between rungs' point evaluations.  The drain
contract: the in-flight job finishes before the process exits (exit
code 0, terminal record on disk), and every rung result it computed is
persisted — a later service on the same cache tree re-runs the same
search entirely from the store, with ``executed == 0``.
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import time

import repro
from repro.service import ServiceApp
from repro.service.client import ServiceClient
from repro.service.jobs import COMPLETED

SEARCH_PAYLOAD = {"search": {
    "space": {"kind": "single-banked", "read_ports": [2, 3],
              "write_ports": [2, 3]},
    "benchmarks": ["gcc"],
    "instructions": 6000,
    "rungs": 1,
}}


def _serve_env() -> dict:
    env = dict(os.environ)
    pkg_root = os.path.dirname(os.path.dirname(repro.__file__))
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = (pkg_root + os.pathsep + existing
                         if existing else pkg_root)
    return env


def _wait(predicate, timeout: float, interval: float = 0.05) -> bool:
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval)
    return bool(predicate())


def test_sigterm_drain_mid_rung_search_reused_on_resume(tmp_path):
    cache = str(tmp_path / "cache")
    port_file = str(tmp_path / "serve.port")
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro.service", "serve",
         "--port", "0", "--port-file", port_file,
         "--cache-dir", cache, "--jobs", "1", "--job-concurrency", "1",
         "--quiet"],
        env=_serve_env(),
        stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL,
    )
    try:
        assert _wait(lambda: os.path.exists(port_file)
                     and os.path.getsize(port_file) > 0, timeout=30.0), \
            "serve never wrote its port file"
        with open(port_file, "r", encoding="utf-8") as handle:
            port = int(handle.readline().strip())
        client = ServiceClient(f"http://127.0.0.1:{port}", timeout=10.0)

        job_id = client.search(SEARCH_PAYLOAD["search"])["id"]

        def mid_rung() -> bool:
            record = client.status(job_id)
            return (record.get("state") == "running"
                    and int(record.get("points", {}).get("completed", 0)) >= 1)

        assert _wait(mid_rung, timeout=120.0), \
            "search never reached mid-rung (running with >= 1 point done)"

        # SIGTERM mid-rung: serve must drain (finish the job), not drop it.
        proc.send_signal(signal.SIGTERM)
        assert proc.wait(timeout=300.0) == 0

        # The drained job is terminal *on disk* with its full result.
        with open(os.path.join(cache, "jobs", f"{job_id}.json"),
                  "r", encoding="utf-8") as handle:
            drained = json.load(handle)
        assert drained["state"] == COMPLETED, drained.get("error")
        drained_frontier = [point["label"] for point in
                           drained["result"]["report"]["frontier"]]
        assert drained_frontier
        assert int(drained["counters"]["executed"]) > 0
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.wait(timeout=30.0)

    # Resume on the same cache tree: the same search re-runs entirely
    # from the drained rung results — zero points executed.
    app = ServiceApp(cache_dir=cache, jobs=1, job_concurrency=1)
    app.start()
    try:
        resumed = app.submit(SEARCH_PAYLOAD)
        deadline = time.monotonic() + 120.0
        while not resumed.terminal and time.monotonic() < deadline:
            time.sleep(0.05)
        assert resumed.state == COMPLETED, resumed.error
        assert int(resumed.counters["executed"]) == 0
        frontier = [point["label"] for point in
                    resumed.result["report"]["frontier"]]
        assert frontier == drained_frontier
    finally:
        app.stop(drain=True, timeout=60.0)
