"""ServiceApp core: admission, execution, dedup, resume, failure paths.

Everything here runs HTTP-free against :class:`ServiceApp` (and, for
single-flight, directly against :class:`SweepEngine`), which keeps the
failure injection and concurrency control deterministic.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures.process import BrokenProcessPool

import pytest

from repro.experiments.common import ExperimentSettings
from repro.experiments.runner import run_experiments
from repro.experiments.scheduler import SimulationPoint, SweepEngine
from repro.experiments.store import ResultStore
from repro.service import ServiceApp
from repro.service.jobs import COMPLETED, FAILED, QUEUED, RUNNING
from repro.service.spec import ApiError, validate_submission

#: A figure submission small enough for the full job to take ~a second.
FIGURE_SPEC = {
    "figure": "figure6",
    "settings": {
        "instructions": 200,
        "warmup_instructions": 50,
        "benchmarks": ["gcc"],
    },
}

POINT_SPEC = {
    "points": [
        {
            "benchmark": "gcc",
            "architecture": "single-banked/1c",
            "factory": {"type": "SingleBankedFactory",
                        "parameters": {"latency": 1}},
            "config": {"max_instructions": 200},
        },
        {
            "benchmark": "gcc",
            "architecture": "rfc/default",
            "factory": {"type": "RegisterFileCacheFactory"},
            "config": {"max_instructions": 200},
        },
    ]
}


def wait_for(job_getter, timeout: float = 60.0):
    deadline = time.time() + timeout
    while time.time() < deadline:
        job = job_getter()
        if job.terminal:
            return job
        time.sleep(0.02)
    raise AssertionError("job did not reach a terminal state in time")


@pytest.fixture
def app(tmp_path):
    service = ServiceApp(cache_dir=str(tmp_path), jobs=1, job_concurrency=2)
    service.start()
    yield service
    service.stop()


class TestSubmissionValidation:
    def test_rejects_non_object_body(self):
        with pytest.raises(ApiError) as excinfo:
            validate_submission([1, 2, 3])
        assert excinfo.value.status == 400
        assert excinfo.value.code == "bad_request"

    def test_rejects_figure_and_points_together(self):
        with pytest.raises(ApiError) as excinfo:
            validate_submission({"figure": "figure6", "points": []})
        assert excinfo.value.status == 422
        assert excinfo.value.code == "invalid_spec"

    def test_rejects_unknown_figure(self):
        with pytest.raises(ApiError) as excinfo:
            validate_submission({"figure": "figure99"})
        assert excinfo.value.status == 422
        assert excinfo.value.code == "unknown_figure"
        assert "figure99" in excinfo.value.message

    def test_rejects_unknown_settings_field(self):
        with pytest.raises(ApiError) as excinfo:
            validate_submission({"figure": "figure6",
                                 "settings": {"instrs": 100}})
        assert excinfo.value.code == "invalid_settings"

    def test_rejects_unknown_benchmark(self):
        with pytest.raises(ApiError) as excinfo:
            validate_submission({"figure": "figure6",
                                 "settings": {"benchmarks": ["bogus"]}})
        assert excinfo.value.status == 422
        assert "bogus" in excinfo.value.message

    def test_rejects_boolean_priority(self):
        with pytest.raises(ApiError) as excinfo:
            validate_submission({**FIGURE_SPEC, "priority": True})
        assert excinfo.value.code == "invalid_spec"

    def test_rejects_unknown_factory_type(self):
        spec = {"points": [{"benchmark": "gcc",
                            "factory": {"type": "WarpDriveFactory"}}]}
        with pytest.raises(ApiError) as excinfo:
            validate_submission(spec)
        assert excinfo.value.code == "invalid_point"
        assert "WarpDriveFactory" in excinfo.value.message

    def test_rejects_unknown_config_field(self):
        spec = {"points": [{"benchmark": "gcc",
                            "config": {"warp_factor": 9}}]}
        with pytest.raises(ApiError) as excinfo:
            validate_submission(spec)
        assert excinfo.value.code == "invalid_point"
        assert "warp_factor" in excinfo.value.message

    def test_rejects_unknown_point_benchmark(self):
        spec = {"points": [{"benchmark": "not-a-benchmark"}]}
        with pytest.raises(ApiError) as excinfo:
            validate_submission(spec)
        assert excinfo.value.code == "invalid_point"

    def test_valid_points_spec_builds_simulation_points(self):
        plan = validate_submission(POINT_SPEC)
        points = plan.plan_points()
        assert len(points) == 2
        assert all(isinstance(point, SimulationPoint) for point in points)
        assert points[0].config.max_instructions == 200


class TestExecution:
    def test_figure_job_completes_and_matches_runner(self, app):
        job = app.submit(FIGURE_SPEC)
        final = wait_for(lambda: app.get_job(job.id))
        assert final.state == COMPLETED
        assert final.points["completed"] == final.points["unique"] > 0
        assert final.counters["executed"] == final.points["unique"]

        # The service's answer equals the runner's answer for the plan.
        settings = ExperimentSettings(
            instructions_per_benchmark=200, warmup_instructions=50,
            benchmarks=["gcc"],
        )
        (expected,) = run_experiments(["figure6"], settings,
                                      store=ResultStore())
        expected.data.pop("elapsed_seconds", None)
        (served,) = final.result["results"]
        assert served["data"] == expected.data
        assert served["body"] == expected.body

    def test_resubmission_is_served_from_cache(self, app):
        first = app.submit(FIGURE_SPEC)
        wait_for(lambda: app.get_job(first.id))
        second = app.submit(FIGURE_SPEC)
        final = wait_for(lambda: app.get_job(second.id))
        assert final.state == COMPLETED
        assert final.counters["executed"] == 0
        assert final.counters["cached"] == final.points["unique"]
        metrics = app.metrics()
        assert metrics["points"]["executed"] == first.points["unique"]
        assert metrics["result_cache"]["hit_rate"] > 0

    def test_points_job_reports_stats(self, app):
        job = app.submit(POINT_SPEC)
        final = wait_for(lambda: app.get_job(job.id))
        assert final.state == COMPLETED
        entries = final.result["points"]
        assert len(entries) == 2
        for entry in entries:
            assert entry["stats"] is not None
            assert entry["stats"]["committed_instructions"] == 200

    def test_job_result_gating(self, app):
        with pytest.raises(ApiError) as excinfo:
            app.job_result("nonexistent000")
        assert excinfo.value.status == 404
        job = app.submit(FIGURE_SPEC)
        wait_for(lambda: app.get_job(job.id))
        with pytest.raises(ApiError) as excinfo:
            app.job_result(job.id, fmt="xml")
        assert excinfo.value.status == 400
        payload = app.job_result(job.id)
        assert payload["result"]["kind"] == "figures"
        csv_text = app.job_result(job.id, fmt="csv")
        assert csv_text.startswith("experiment,metric,value")


class TestSingleFlight:
    def test_concurrent_identical_batches_simulate_once(self):
        store = ResultStore()
        engine = SweepEngine(store=store, jobs=1)
        plan = validate_submission(POINT_SPEC)
        points = plan.plan_points()
        barrier = threading.Barrier(2)
        summaries = [None, None]

        def run(slot: int) -> None:
            barrier.wait()
            summaries[slot] = engine.execute(points)

        threads = [threading.Thread(target=run, args=(slot,))
                   for slot in range(2)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

        total_executed = sum(summary["executed"] for summary in summaries)
        assert total_executed == len(points)  # the simulation ran ONCE
        assert store.counters()["stores"] == len(points)
        # Both callers nevertheless observe every result.
        for point in points:
            assert store.get(point.store_key()) is not None

    def test_concurrent_identical_submissions_execute_once(self, app):
        jobs = [app.submit(POINT_SPEC), app.submit(POINT_SPEC)]
        finals = [wait_for(lambda job=job: app.get_job(job.id))
                  for job in jobs]
        assert all(job.state == COMPLETED for job in finals)
        total_executed = sum(job.counters["executed"] for job in finals)
        assert total_executed == 2  # two unique points, one simulation each
        assert app.store.counters()["stores"] == 2


class TestFailurePaths:
    def test_broken_pool_marks_job_failed_with_cause(self, tmp_path):
        app = ServiceApp(cache_dir=str(tmp_path), jobs=1)

        def exploding_execute(points, progress=None, on_point=None):
            raise BrokenProcessPool("worker pid 1234 died")

        app.engine.execute = exploding_execute
        app.start()
        try:
            job = app.submit(FIGURE_SPEC)
            final = wait_for(lambda: app.get_job(job.id))
            assert final.state == FAILED
            assert final.error["code"] == "worker_crashed"
            assert "died" in final.error["message"]
            # The failure is durable: a fresh store sees it too.
            reloaded = {j.id: j for j in app.job_store.load_all()}
            assert reloaded[job.id].state == FAILED
            assert reloaded[job.id].error["code"] == "worker_crashed"
        finally:
            app.stop()

    def test_execution_error_marks_job_failed(self, tmp_path):
        app = ServiceApp(cache_dir=str(tmp_path), jobs=1)

        def exploding_execute(points, progress=None, on_point=None):
            raise RuntimeError("unexpected")

        app.engine.execute = exploding_execute
        app.start()
        try:
            job = app.submit(FIGURE_SPEC)
            final = wait_for(lambda: app.get_job(job.id))
            assert final.state == FAILED
            assert final.error["code"] == "internal_error"
        finally:
            app.stop()


class TestRestartResume:
    def test_queued_job_resumes_after_restart(self, tmp_path):
        # First process: admit a job but never start the executors (the
        # process "dies" with the job still queued).
        first = ServiceApp(cache_dir=str(tmp_path), jobs=1)
        job = first.submit(FIGURE_SPEC)
        assert job.state == QUEUED
        # Second process over the same cache dir picks the job up.
        second = ServiceApp(cache_dir=str(tmp_path), jobs=1)
        second.start()
        try:
            assert second.resumed_jobs == 1
            final = wait_for(lambda: second.get_job(job.id))
            assert final.state == COMPLETED
        finally:
            second.stop()

    def test_running_job_is_requeued_after_crash(self, tmp_path):
        first = ServiceApp(cache_dir=str(tmp_path), jobs=1)
        job = first.submit(FIGURE_SPEC)
        # Simulate a crash mid-job: persisted state says "running".
        job.mark_running()
        first.job_store.save(job)
        second = ServiceApp(cache_dir=str(tmp_path), jobs=1)
        second.start()
        try:
            assert second.resumed_jobs == 1
            final = wait_for(lambda: second.get_job(job.id))
            assert final.state == COMPLETED
            assert final.state != RUNNING
        finally:
            second.stop()

    def test_corrupt_job_record_is_quarantined_not_fatal(self, tmp_path):
        first = ServiceApp(cache_dir=str(tmp_path), jobs=1)
        good = first.submit(FIGURE_SPEC)
        bad_path = tmp_path / "jobs" / "badbadbadbad.json"
        bad_path.write_text("{corrupt", encoding="utf-8")
        second = ServiceApp(cache_dir=str(tmp_path), jobs=1)
        second.start()
        try:
            assert second.job_store.quarantined == 1
            assert second.metrics()["job_store"]["quarantined"] == 1
            final = wait_for(lambda: second.get_job(good.id))
            assert final.state == COMPLETED
        finally:
            second.stop()


class TestDrain:
    def test_stop_then_start_still_executes(self, tmp_path):
        """A stopped app can be started again on the same instance."""
        app = ServiceApp(cache_dir=str(tmp_path), jobs=1)
        app.start()
        app.stop(drain=True)
        app.start()
        try:
            job = app.submit(FIGURE_SPEC)
            final = wait_for(lambda: app.get_job(job.id))
            assert final.state == COMPLETED
        finally:
            app.stop()

    def test_stop_drains_running_job(self, tmp_path):
        app = ServiceApp(cache_dir=str(tmp_path), jobs=1)
        app.start()
        job = app.submit(FIGURE_SPEC)
        deadline = time.time() + 30
        while app.get_job(job.id).state == QUEUED and time.time() < deadline:
            time.sleep(0.005)
        app.stop(drain=True)  # must wait for the in-flight job
        assert app.get_job(job.id).state in (COMPLETED, FAILED)
        assert app.get_job(job.id).state == COMPLETED


class TestSamplingAdmission:
    """The optional ``sample`` key: structured rejection, exact echo."""

    @pytest.mark.parametrize("sample, fragment", [
        ("400:1500", "window"),          # window exceeds the stride
        ("a:b", "colon-separated"),
        ("10", "STRIDE:WINDOW"),
        ({"stride": 10}, "missing required"),
        ({"stride": 10, "window": 5, "bogus": 1}, "unknown sampling"),
        (123, "must be a"),              # neither string nor object
    ])
    def test_invalid_sample_is_a_structured_422(self, sample, fragment):
        with pytest.raises(ApiError) as excinfo:
            validate_submission({**POINT_SPEC, "sample": sample})
        assert excinfo.value.status == 422
        assert excinfo.value.code == "invalid_sampling"
        assert fragment in excinfo.value.message
        # The wire form carries the code for clients to branch on.
        assert excinfo.value.to_dict()["error"]["code"] == "invalid_sampling"

    def test_valid_sample_string_echoes_the_resolved_spec(self):
        from repro.sampling import SamplingSpec

        plan = validate_submission({**POINT_SPEC, "sample": "1000:100:200"})
        expected = SamplingSpec(stride=1000, window=100, warmup=200)
        assert plan.spec["sample"] == expected.to_payload()
        assert all(point.sampling == expected for point in plan.points)
        # The echo must round-trip: restarted services re-validate the
        # persisted spec, so re-admitting it rebuilds the same plan.
        replan = validate_submission(plan.spec)
        assert replan.spec["sample"] == expected.to_payload()
        assert all(point.sampling == expected for point in replan.points)

    def test_null_and_absent_sample_mean_exact_runs(self):
        for payload in (POINT_SPEC, {**POINT_SPEC, "sample": None}):
            plan = validate_submission(payload)
            assert "sample" not in plan.spec
            assert all(point.sampling is None for point in plan.points)
