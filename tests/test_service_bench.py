"""The service_throughput bench scenario and version-stamped reports."""

from __future__ import annotations

from repro import __version__
from repro.bench.report import environment_fingerprint
from repro.bench.runner import BenchmarkRunner
from repro.bench.scenarios import ServiceScenario, service_scenarios


class TestServiceScenario:
    def test_service_round_trip_in_report(self):
        scenario = ServiceScenario(
            name="service_throughput/figure6",
            figure="figure6",
            instructions=200,
            warmup_instructions=50,
            benchmarks=("gcc",),
        )
        runner = BenchmarkRunner(repeats=1, simulations=[], sweeps=[],
                                 sampled_sweeps=[], services=[scenario],
                                 stores=[],
                                 include_components=False)
        report = runner.run(index=1)
        [result] = report.scenarios
        assert result.kind == "service"
        assert result.operations == 3  # 3 architectures x 1 benchmark
        assert result.operations_per_second > 0
        assert result.stats_digest and len(result.stats_digest) == 64
        assert result.metadata["transport"] == "http"
        assert result.metadata["points_per_minute"] > 0
        assert result.metadata["job_counters"]["executed"] == 3

    def test_scenario_is_quick_eligible_and_stably_named(self):
        (quick,) = service_scenarios(quick=True)
        (full,) = service_scenarios(quick=False)
        # The perf gate matches scenarios by name across reports, so the
        # quick CI run must carry the same name as the committed baseline.
        assert quick.name == full.name == "service_throughput/figure6"
        assert quick.instructions < full.instructions

    def test_deterministic_digest(self):
        scenario = ServiceScenario(
            name="service_throughput/figure6",
            figure="figure6",
            instructions=200,
            warmup_instructions=50,
            benchmarks=("gcc",),
        )
        assert scenario.run()["stats_digest"] == scenario.run()["stats_digest"]


class TestVersionEmbedding:
    def test_bench_environment_carries_repro_version(self):
        assert environment_fingerprint()["repro_version"] == __version__

    def test_validation_report_carries_version(self):
        from repro.validate.report import ValidationReport

        report = ValidationReport(created="now", quick=True, seeds=[1],
                                  architectures=["x"])
        assert report.to_dict()["version"] == __version__

    def test_experiments_json_report_carries_version(self):
        from repro.experiments.common import ExperimentSettings
        from repro.experiments.runner import render_json
        import json

        payload = json.loads(render_json([], ExperimentSettings()))
        assert payload["version"] == __version__

    def test_single_sourced_version(self):
        from repro.version import __version__ as module_version

        assert module_version == __version__
