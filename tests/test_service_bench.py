"""The service_throughput bench scenario and version-stamped reports."""

from __future__ import annotations

from repro import __version__
from repro.bench.report import environment_fingerprint
from repro.bench.runner import BenchmarkRunner
from repro.bench.scenarios import ServiceScenario, service_scenarios


class TestServiceScenario:
    def test_service_round_trip_in_report(self):
        scenario = ServiceScenario(
            name="service_throughput/figure6",
            figure="figure6",
            instructions=200,
            warmup_instructions=50,
            benchmarks=("gcc",),
        )
        runner = BenchmarkRunner(repeats=1, simulations=[], sweeps=[],
                                 sampled_sweeps=[], services=[scenario],
                                 stores=[],
                                 include_components=False)
        report = runner.run(index=1)
        [result] = report.scenarios
        assert result.kind == "service"
        assert result.operations == 3  # 3 architectures x 1 benchmark
        assert result.operations_per_second > 0
        assert result.stats_digest and len(result.stats_digest) == 64
        assert result.metadata["transport"] == "http"
        assert result.metadata["points_per_minute"] > 0
        assert result.metadata["job_counters"]["executed"] == 3

    def test_scenario_is_quick_eligible_and_stably_named(self):
        quick, quick_resilience, quick_obs = service_scenarios(quick=True)
        full, full_resilience, full_obs = service_scenarios(quick=False)
        # The perf gate matches scenarios by name across reports, so the
        # quick CI run must carry the same name as the committed baseline.
        assert quick.name == full.name == "service_throughput/figure6"
        assert quick.instructions < full.instructions
        assert quick_resilience.name == full_resilience.name \
            == "resilience_overhead/figure6"
        assert quick_resilience.instructions < full_resilience.instructions
        assert quick_obs.name == full_obs.name == "obs_overhead/figure6"
        # The obs ratio is deliberately measured at full size even under
        # --quick: watch-poll quantisation swamps sub-second jobs.
        assert quick_obs.instructions == full_obs.instructions

    def test_deterministic_digest(self):
        scenario = ServiceScenario(
            name="service_throughput/figure6",
            figure="figure6",
            instructions=200,
            warmup_instructions=50,
            benchmarks=("gcc",),
        )
        assert scenario.run()["stats_digest"] == scenario.run()["stats_digest"]


class TestResilienceOverheadScenario:
    def test_both_passes_identical_and_ratio_reported(self):
        from repro.bench.scenarios import ResilienceOverheadScenario

        scenario = ResilienceOverheadScenario(
            name="resilience_overhead/figure6",
            figure="figure6",
            instructions=200,
            warmup_instructions=50,
            benchmarks=("gcc",),
        )
        outcome = scenario.run()
        assert outcome["points"] == 3
        summary = outcome["summary"]
        assert summary["disabled_wall_seconds"] > 0
        assert summary["instrumented_wall_seconds"] > 0
        assert summary["instrumented_over_disabled"] > 0
        assert len(outcome["stats_digest"]) == 64
        # The seams must be left disabled afterwards.
        from repro.chaos import seams

        assert not seams.installed()


class TestVersionEmbedding:
    def test_bench_environment_carries_repro_version(self):
        assert environment_fingerprint()["repro_version"] == __version__

    def test_validation_report_carries_version(self):
        from repro.validate.report import ValidationReport

        report = ValidationReport(created="now", quick=True, seeds=[1],
                                  architectures=["x"])
        assert report.to_dict()["version"] == __version__

    def test_experiments_json_report_carries_version(self):
        from repro.experiments.common import ExperimentSettings
        from repro.experiments.runner import render_json
        import json

        payload = json.loads(render_json([], ExperimentSettings()))
        assert payload["version"] == __version__

    def test_single_sourced_version(self):
        from repro.version import __version__ as module_version

        assert module_version == __version__
