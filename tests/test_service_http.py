"""HTTP API and client CLI of the sweep service.

One in-process server (port 0) per test class; requests go through the
real socket path via :class:`ServiceClient`, raw ``urllib`` for the
malformed-payload cases, and ``repro.service.__main__`` for the CLI.
"""

from __future__ import annotations

import json
import threading
import urllib.error
import urllib.request

import pytest

from repro.service import ServiceApp, ServiceClient, ServiceError, build_server
from repro.service.__main__ import main as service_main
from repro.service.jobs import COMPLETED

FIGURE_SPEC = {
    "figure": "figure6",
    "settings": {
        "instructions": 200,
        "warmup_instructions": 50,
        "benchmarks": ["gcc"],
    },
}


@pytest.fixture
def service(tmp_path):
    app = ServiceApp(cache_dir=str(tmp_path), jobs=1, job_concurrency=2)
    server = build_server(app, port=0)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    app.start()
    url = f"http://127.0.0.1:{server.server_address[1]}"
    yield url, app
    server.shutdown()
    server.server_close()
    app.stop()


def raw_request(url: str, method: str = "GET", body: bytes = None,
                content_type: str = "application/json"):
    request = urllib.request.Request(
        url, data=body, method=method,
        headers={"Content-Type": content_type} if body else {},
    )
    try:
        with urllib.request.urlopen(request, timeout=30) as response:
            return response.status, json.loads(response.read().decode("utf-8"))
    except urllib.error.HTTPError as error:
        return error.code, json.loads(error.read().decode("utf-8"))


class TestHttpApi:
    def test_healthz_and_metrics(self, service):
        url, _ = service
        client = ServiceClient(url)
        health = client.health()
        from repro import __version__

        assert health["status"] == "ok"
        assert health["version"] == __version__
        metrics = client.metrics()
        assert metrics["version"] == __version__
        assert metrics["queue"]["depth"] == 0
        assert set(metrics["jobs"]) >= {"queued", "running", "completed",
                                        "failed", "total"}
        assert "hit_rate" in metrics["result_cache"]
        assert "hit_rate" in metrics["trace_cache"]
        assert "pool_resets" in metrics["engine"]

    def test_submit_watch_result_round_trip(self, service):
        url, _ = service
        client = ServiceClient(url)
        job = client.submit(FIGURE_SPEC)
        assert job["state"] == "queued"
        final = client.watch(job["id"], interval=0.05, timeout=120)
        assert final["state"] == COMPLETED
        result = client.result(job["id"])
        assert result["result"]["kind"] == "figures"
        csv_text = client.result(job["id"], fmt="csv")
        assert csv_text.startswith("experiment,metric,value")
        listing = client.jobs()
        assert any(entry["id"] == job["id"] for entry in listing["jobs"])

    def test_warm_resubmission_executes_nothing(self, service):
        url, _ = service
        client = ServiceClient(url)
        first = client.submit(FIGURE_SPEC)
        client.watch(first["id"], interval=0.05, timeout=120)
        executed_before = client.metrics()["points"]["executed"]
        second = client.submit(FIGURE_SPEC)
        final = client.watch(second["id"], interval=0.05, timeout=120)
        assert final["counters"]["executed"] == 0
        metrics = client.metrics()
        assert metrics["points"]["executed"] == executed_before
        assert metrics["points"]["completed"] > executed_before

    def test_unknown_job_is_structured_404(self, service):
        url, _ = service
        status, payload = raw_request(f"{url}/jobs/doesnotexist0")
        assert status == 404
        assert payload["error"]["code"] == "job_not_found"
        status, payload = raw_request(f"{url}/jobs/doesnotexist0/result")
        assert status == 404
        assert payload["error"]["code"] == "job_not_found"

    def test_malformed_json_is_structured_400(self, service):
        url, _ = service
        status, payload = raw_request(f"{url}/jobs", method="POST",
                                      body=b"{not json at all")
        assert status == 400
        assert payload["error"]["code"] == "bad_request"
        assert "JSON" in payload["error"]["message"]

    def test_unknown_figure_is_structured_422(self, service):
        url, _ = service
        status, payload = raw_request(
            f"{url}/jobs", method="POST",
            body=json.dumps({"figure": "figure99"}).encode("utf-8"),
        )
        assert status == 422
        assert payload["error"]["code"] == "unknown_figure"

    def test_unknown_route_is_structured_404(self, service):
        url, _ = service
        status, payload = raw_request(f"{url}/nope")
        assert status == 404
        assert payload["error"]["code"] == "not_found"
        status, payload = raw_request(f"{url}/healthz", method="POST", body=b"{}")
        assert status == 404

    def test_result_before_completion_is_409(self, service):
        url, app = service
        # Admit without executing: stop the executors first.
        app.stop(drain=True)
        client = ServiceClient(url)
        job = client.submit(FIGURE_SPEC)
        with pytest.raises(ServiceError) as excinfo:
            client.result(job["id"])
        assert excinfo.value.status == 409
        assert excinfo.value.code == "job_not_completed"


class TestClientErrors:
    def test_unreachable_service(self):
        client = ServiceClient("http://127.0.0.1:1", timeout=2)
        with pytest.raises(ServiceError) as excinfo:
            client.health()
        assert excinfo.value.code == "unreachable"
        assert excinfo.value.status is None


class TestClientCli:
    def test_submit_watch_status_result(self, service, capsys):
        url, _ = service
        code = service_main([
            "submit", "--figure", "figure6", "--instructions", "200",
            "--warmup-instructions", "50", "--benchmarks", "gcc",
            "--url", url, "--wait",
        ])
        assert code == 0
        captured = capsys.readouterr()
        job_id = captured.out.strip().splitlines()[-1]
        assert len(job_id) == 12

        assert service_main(["status", job_id, "--url", url]) == 0
        status_payload = json.loads(capsys.readouterr().out)
        assert status_payload["state"] == COMPLETED

        assert service_main(["result", job_id, "--format", "csv",
                             "--url", url]) == 0
        assert capsys.readouterr().out.startswith("experiment,metric,value")

        assert service_main(["metrics", "--url", url]) == 0
        metrics = json.loads(capsys.readouterr().out)
        assert metrics["jobs"]["completed"] >= 1

    def test_cli_surfaces_server_error_verbatim(self, service, capsys):
        url, _ = service
        code = service_main(["submit", "--figure", "figure99", "--url", url])
        assert code == 1
        captured = capsys.readouterr()
        assert "error: [unknown_figure]" in captured.err
        assert "figure99" in captured.err

    def test_cli_surfaces_404_verbatim(self, service, capsys):
        url, _ = service
        code = service_main(["status", "doesnotexist0", "--url", url])
        assert code == 1
        captured = capsys.readouterr()
        assert "error: [job_not_found]" in captured.err
        assert "doesnotexist0" in captured.err

    def test_cli_unreachable_exit_code(self, capsys):
        code = service_main(["health", "--url", "http://127.0.0.1:1"])
        assert code == 2
        assert "error: [unreachable]" in capsys.readouterr().err


class TestWatchBackoff:
    """``ServiceClient.watch`` must not busy-poll an idle job: the poll
    interval backs off geometrically (with jitter) while nothing changes
    and snaps back to ``interval`` on any observed progress."""

    @staticmethod
    def _job(state, completed=0):
        return {"id": "j0", "state": state, "points": {"completed": completed}}

    def _scripted_client(self, records):
        client = ServiceClient("http://127.0.0.1:1")  # never dialled
        queue = list(records)
        client.status = lambda job_id: queue.pop(0)
        return client

    def test_idle_watch_backs_off_to_the_cap(self):
        client = self._scripted_client(
            [self._job("queued")] * 10 + [self._job(COMPLETED)]
        )
        sleeps = []
        final = client.watch("j0", interval=0.1, max_interval=1.0,
                             jitter=0.0, _sleep=sleeps.append)
        assert final["state"] == COMPLETED
        # The first poll observes a fresh state, so the delay starts at
        # the base interval; every idle poll after that grows it until
        # the cap, where it stays.
        assert sleeps[0] == pytest.approx(0.1)
        assert all(b >= a for a, b in zip(sleeps, sleeps[1:]))
        assert sleeps[-1] == pytest.approx(1.0)
        assert max(sleeps) <= 1.0 + 1e-9
        assert sleeps[1] == pytest.approx(0.16)  # x1.6 geometric growth

    def test_progress_resets_the_delay(self):
        client = self._scripted_client(
            [self._job("queued")] * 4
            + [self._job("running", completed=1)] * 3
            + [self._job(COMPLETED, completed=2)]
        )
        sleeps = []
        client.watch("j0", interval=0.1, max_interval=1.0, jitter=0.0,
                     _sleep=sleeps.append)
        assert sleeps[3] > sleeps[0]  # idle polls had backed off...
        assert sleeps[4] == pytest.approx(0.1)  # ...progress resets
        assert sleeps[5] == pytest.approx(0.16)

    def test_jitter_stays_within_bounds(self):
        client = self._scripted_client(
            [self._job("queued")] * 8 + [self._job(COMPLETED)]
        )
        sleeps = []
        client.watch("j0", interval=0.1, max_interval=1.0, jitter=0.2,
                     _sleep=sleeps.append)
        expected = 0.1
        for index, actual in enumerate(sleeps):
            assert expected * 0.8 - 1e-9 <= actual <= expected * 1.2 + 1e-9, index
            expected = min(expected * 1.6, 1.0)

    def test_terminal_job_returns_without_sleeping(self):
        client = self._scripted_client([self._job(COMPLETED, completed=2)])
        sleeps = []
        final = client.watch("j0", interval=0.1, _sleep=sleeps.append)
        assert final["state"] == COMPLETED
        assert sleeps == []
