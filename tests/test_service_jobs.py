"""Job model, priority queue and on-disk job store."""

from __future__ import annotations

import json
import os

import pytest

from repro.service.jobs import (
    COMPLETED,
    FAILED,
    QUEUED,
    RUNNING,
    SCHEMA_VERSION,
    Job,
    JobQueue,
    JobStore,
    new_job_id,
)


def make_job(job_id: str = "abc123def456", priority: int = 0) -> Job:
    return Job(id=job_id, spec={"figure": "figure6", "settings": {}},
               priority=priority)


class TestJobModel:
    def test_round_trip(self):
        job = make_job()
        job.points["requested"] = 6
        job.points["unique"] = 3
        job.mark_running()
        job.mark_completed({"kind": "figures", "results": []},
                           {"executed": 3, "cached": 0})
        payload = job.to_dict(include_result=True)
        clone = Job.from_dict(payload)
        assert clone.id == job.id
        assert clone.state == COMPLETED
        assert clone.points == job.points
        assert clone.counters == {"executed": 3, "cached": 0}
        assert clone.result == {"kind": "figures", "results": []}
        assert clone.submitted_at == job.submitted_at

    def test_to_dict_embeds_schema_and_version(self):
        payload = make_job().to_dict()
        assert payload["schema"] == SCHEMA_VERSION
        from repro import __version__

        assert payload["version"] == __version__
        assert "result" not in payload  # status payloads stay small

    def test_failed_records_cause(self):
        job = make_job()
        job.mark_failed("worker_crashed", "a worker died")
        assert job.state == FAILED
        assert job.terminal
        assert job.error == {"code": "worker_crashed", "message": "a worker died"}

    def test_from_dict_rejects_bad_schema_and_state(self):
        with pytest.raises(ValueError):
            Job.from_dict({"schema": 999, "id": "x", "state": QUEUED})
        with pytest.raises(ValueError):
            Job.from_dict({"schema": SCHEMA_VERSION, "id": "x",
                           "state": "exploded"})

    def test_new_job_ids_are_unique(self):
        ids = {new_job_id() for _ in range(64)}
        assert len(ids) == 64


class TestJobStore:
    def test_save_and_load_all(self, tmp_path):
        store = JobStore(str(tmp_path))
        first, second = make_job("a" * 12), make_job("b" * 12)
        store.save(first)
        store.save(second)
        loaded = JobStore(str(tmp_path)).load_all()
        assert {job.id for job in loaded} == {first.id, second.id}

    def test_memoryless_without_cache_dir(self):
        store = JobStore(None)
        store.save(make_job())
        assert store.load_all() == []

    def test_corrupt_file_is_quarantined(self, tmp_path):
        store = JobStore(str(tmp_path))
        store.save(make_job("a" * 12))
        bad = os.path.join(store.job_dir, "deadbeef0000.json")
        with open(bad, "w", encoding="utf-8") as handle:
            handle.write("{not json")
        fresh = JobStore(str(tmp_path))
        loaded = fresh.load_all()
        assert [job.id for job in loaded] == ["a" * 12]
        assert fresh.quarantined == 1
        assert not os.path.exists(bad)
        assert os.path.exists(
            os.path.join(fresh.job_dir, "quarantine", "deadbeef0000.json")
        )

    def test_schema_mismatch_is_quarantined(self, tmp_path):
        store = JobStore(str(tmp_path))
        path = os.path.join(store.job_dir, "c" * 12 + ".json")
        with open(path, "w", encoding="utf-8") as handle:
            json.dump({"schema": 999, "id": "c" * 12, "state": QUEUED}, handle)
        fresh = JobStore(str(tmp_path))
        assert fresh.load_all() == []
        assert fresh.quarantined == 1

    def test_filename_id_mismatch_is_quarantined(self, tmp_path):
        store = JobStore(str(tmp_path))
        job = make_job("d" * 12)
        path = os.path.join(store.job_dir, "e" * 12 + ".json")
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(job.to_dict(include_result=True), handle)
        fresh = JobStore(str(tmp_path))
        assert fresh.load_all() == []
        assert fresh.quarantined == 1

    def test_save_overwrites_atomically(self, tmp_path):
        store = JobStore(str(tmp_path))
        job = make_job("f" * 12)
        store.save(job)
        job.mark_running()
        store.save(job)
        (loaded,) = JobStore(str(tmp_path)).load_all()
        assert loaded.state == RUNNING
        # No leftover temp files from the two writes.
        leftovers = [name for name in os.listdir(store.job_dir)
                     if name.endswith(".tmp")]
        assert leftovers == []


class TestJobQueue:
    def test_priority_order_then_fifo(self):
        queue = JobQueue()
        low = make_job("1" * 12, priority=0)
        high = make_job("2" * 12, priority=5)
        low2 = make_job("3" * 12, priority=0)
        for job in (low, high, low2):
            queue.add(job)
        order = [queue.next_job(timeout=0.1).id for _ in range(3)]
        assert order == [high.id, low.id, low2.id]
        assert queue.next_job(timeout=0.01) is None

    def test_registry_keeps_unqueued_jobs(self):
        queue = JobQueue()
        done = make_job("4" * 12)
        done.mark_running()
        done.mark_completed({}, {})
        queue.add(done, enqueue=False)
        assert queue.get(done.id) is done
        assert queue.depth() == 0
        assert queue.by_state()[COMPLETED] == 1
