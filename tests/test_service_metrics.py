"""Observability correctness: monotonic rate clock, fleet aggregation.

The uptime feeding the points/min rate must come from a *monotonic*
clock (a wall-clock NTP step must not produce negative uptime or a
garbage rate), and :meth:`ReplicaRegistry.fleet_metrics` must round —
never truncate — float counters while surfacing malformed snapshot
fields in ``snapshot_errors`` instead of silently dropping them.
"""

from __future__ import annotations

from repro.service.app import ServiceApp
from repro.service.fleet import ReplicaRegistry, _coerce_count


class TestMonotonicUptime:
    def _frozen_app(self):
        app = ServiceApp(cache_dir=None, jobs=1)  # never started: pure reads
        clock = {"now": 1000.0}
        app._monotonic = lambda: clock["now"]
        app._started_clock = clock["now"]
        return app, clock

    def test_uptime_follows_the_injected_monotonic_clock(self):
        app, clock = self._frozen_app()
        assert app.uptime_seconds() == 0.0
        clock["now"] += 90.0
        assert app.uptime_seconds() == 90.0
        assert app.health()["uptime_seconds"] == 90.0
        # Wall-clock start stays an ISO timestamp for humans.
        assert app.started_at.startswith("20")

    def test_points_per_minute_is_exact_under_a_frozen_clock(self):
        app, clock = self._frozen_app()
        app._point_counters["completed"].inc(10)
        clock["now"] += 120.0
        metrics = app.metrics()
        assert metrics["uptime_seconds"] == 120.0
        # The lifetime average rate (completed * 60 / uptime).
        assert metrics["points"]["per_minute_lifetime"] == 5.0
        # Zero uptime must not divide by zero.
        app._started_clock = clock["now"]
        assert app.metrics()["points"]["per_minute_lifetime"] == 0.0

    def test_per_minute_is_a_sliding_window_rate(self):
        app, clock = self._frozen_app()
        # The window was opened against the real clock at construction;
        # re-anchor it to the injected one.
        app._rate_window._opened = clock["now"]
        # 5 points observed "now": the window has been open 120 s, so the
        # rate reflects the full 60 s window, not the whole uptime.
        clock["now"] += 120.0
        for _ in range(5):
            app._rate_window.record(1)
        assert app.metrics()["points"]["per_minute"] == 5.0
        # 61 s later those points have left the window entirely.
        clock["now"] += 61.0
        assert app.metrics()["points"]["per_minute"] == 0.0


class TestCoerceCount:
    def test_floats_round_instead_of_truncating(self):
        assert _coerce_count(10.6) == (11, True)
        assert _coerce_count(10.4) == (10, True)
        assert _coerce_count(7) == (7, True)

    def test_non_numbers_and_bools_are_malformed(self):
        assert _coerce_count("many") == (0, False)
        assert _coerce_count(None) == (0, False)
        assert _coerce_count(True) == (0, False)
        assert _coerce_count([1]) == (0, False)


class TestFleetAggregation:
    def test_stale_and_malformed_snapshot_mix(self, tmp_path):
        cache_dir = str(tmp_path)
        clock = {"now": 100.0}

        def registry(replica_id: str) -> ReplicaRegistry:
            return ReplicaRegistry(cache_dir, replica_id=replica_id,
                                   clock=lambda: clock["now"])

        # beta published long ago: stale, but its finished work remains
        # in the fleet totals.
        registry("beta").publish({"points": {"completed": 7, "executed": 3,
                                             "per_minute": 30.0}})
        clock["now"] = 290.0
        # alpha is fresh, with float counters from rate arithmetic: the
        # old truncation would have under-counted completed by one.
        registry("alpha").publish({"points": {"completed": 10.6,
                                              "executed": 2.2,
                                              "per_minute": 12.5}})
        # gamma is fresh but half-corrupt: a string counter and a bool
        # rate must be counted as errors, not zeroed into the totals.
        registry("gamma").publish({"points": {"completed": "many",
                                              "executed": 4,
                                              "per_minute": True}})
        # delta's snapshot carries no points section at all (legal: a
        # replica that has not run anything yet), delta2's is garbage.
        registry("delta").publish({})
        registry("delta2").publish({"points": "corrupt"})

        clock["now"] = 300.0
        fleet = registry("alpha").fleet_metrics(fresh_within=60.0)

        assert fleet["known_replicas"] == 5
        assert fleet["active_replicas"] == 4  # all but beta
        assert fleet["points"]["completed"] == 11 + 7  # rounded, not 10+7
        assert fleet["points"]["executed"] == 2 + 3 + 4
        # Only fresh replicas contribute to the aggregate rate, and
        # gamma's bool rate is an error rather than a contribution.
        assert fleet["per_minute"] == 12.5
        # gamma: completed + per_minute; delta2: non-dict points.
        assert fleet["snapshot_errors"] == 3

        by_id = {replica["id"]: replica for replica in fleet["replicas"]}
        assert by_id["beta"]["active"] is False
        assert by_id["alpha"]["active"] is True
        assert by_id["alpha"]["points"]["completed"] == 11
        assert by_id["gamma"]["points"]["completed"] == 0
        assert by_id["delta"]["points"]["completed"] == 0

    def test_absent_points_fields_are_not_errors(self, tmp_path):
        clock = {"now": 50.0}
        registry = ReplicaRegistry(str(tmp_path), replica_id="solo",
                                   clock=lambda: clock["now"])
        registry.publish({"points": {"completed": 5}})
        fleet = registry.fleet_metrics(fresh_within=60.0)
        assert fleet["snapshot_errors"] == 0
        assert fleet["points"]["completed"] == 5
        assert fleet["points"]["executed"] == 0
