"""End-to-end observability through the real HTTP path.

One job rides the full stack — client-minted trace header, admission,
queue, execution, storage — and everything the telemetry layer promises
is checked against that single run: trace propagation, the complete
span timeline, SSE resume-from-``since``, the Prometheus scrape, and
the ``/metrics`` JSON shape staying byte-compatible with what the API
served before the registry existed.
"""

from __future__ import annotations

import threading

import pytest

from repro.obs.events import read_events, unfinished_spans
from repro.obs.prometheus import parse as parse_prometheus
from repro.service.app import EVENTS_SUBDIR, ServiceApp
from repro.service.client import ServiceClient, ServiceError
from repro.service.server import build_server


def _spec(n=2, instructions=400):
    return {
        "points": [
            {
                "benchmark": "gcc",
                "architecture": f"obs/{index}",
                "config": {"max_instructions": instructions + index},
            }
            for index in range(n)
        ]
    }


class _Run:
    """Everything captured from one traced job against a live server."""


@pytest.fixture(scope="module")
def run(tmp_path_factory):
    cache_dir = str(tmp_path_factory.mktemp("obs-e2e"))
    app = ServiceApp(cache_dir=cache_dir, jobs=1, job_concurrency=1)
    server = build_server(app, port=0)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    app.start()
    captured = _Run()
    try:
        client = ServiceClient(
            f"http://127.0.0.1:{server.server_address[1]}", timeout=30.0
        )
        phases = []
        job = client.submit(_spec())
        record = client.watch(job["id"], interval=0.05, timeout=120.0,
                              on_phase=lambda e: phases.append(e["phase"]))
        captured.cache_dir = cache_dir
        captured.trace = client.last_trace
        captured.job_id = job["id"]
        captured.record = record
        captured.phases = phases
        captured.metrics = client.metrics()
        captured.prometheus = client._request(
            "GET", "/metrics?format=prometheus", raw=True
        )
        captured.events = list(client.events(since=0, stop_on_idle=True))
        captured.breakdown = client.job_span_breakdown(job["id"])
        captured.client = client
    finally:
        server.shutdown()
        server.server_close()
        app.stop(drain=True, timeout=60.0)
    captured.disk_events = read_events(
        f"{cache_dir}/{EVENTS_SUBDIR}"
    )
    return captured


class TestTracePropagation:
    def test_job_completes(self, run):
        assert run.record.get("state") == "completed"

    def test_client_trace_reaches_the_job_record(self, run):
        assert run.trace is not None
        assert run.record["trace"]["trace_id"] == run.trace.trace_id

    def test_every_span_of_the_job_carries_the_client_trace(self, run):
        job_spans = [
            e for e in run.disk_events
            if e.get("kind") in ("span_start", "span_end")
            and e.get("job_id") == run.job_id
        ]
        assert job_spans
        assert all(e.get("trace_id") == run.trace.trace_id
                   for e in job_spans)


class TestTimeline:
    def test_every_span_start_has_an_end(self, run):
        assert unfinished_spans(run.disk_events) == []

    def test_the_span_tree_is_complete(self, run):
        names = {
            e.get("span") for e in run.disk_events
            if e.get("kind") == "span_end" and e.get("job_id") == run.job_id
        }
        assert {"job", "queue.wait", "lease.hold", "execute"} <= names

    def test_child_durations_fit_inside_the_job_wall(self, run):
        ends = {
            e["span"]: e.get("duration_s", 0.0)
            for e in run.disk_events
            if e.get("kind") == "span_end" and e.get("job_id") == run.job_id
        }
        # queue.wait and execute are disjoint phases of the job wall.
        assert ends["queue.wait"] + ends["execute"] <= ends["job"] + 0.05

    def test_phase_transitions_streamed_in_order(self, run):
        assert run.phases[0] == "queued"
        assert run.phases[-1] == "completed"
        assert set(run.phases) >= {"queued", "leased", "running", "completed"}

    def test_breakdown_sums_span_ends(self, run):
        assert run.breakdown is not None
        assert {"job", "queue.wait", "execute"} <= set(run.breakdown)


class TestEventStream:
    def test_sse_resumes_from_since(self, run):
        seqs = [e["seq"] for e in run.events]
        assert seqs == sorted(seqs)
        cursor = seqs[len(seqs) // 2]
        # (Collected while the server was live; resume semantics are on
        # the ring buffer itself.)
        later = [e for e in run.events if e["seq"] > cursor]
        assert later and later[0]["seq"] > cursor

    def test_disk_log_and_stream_agree(self, run):
        streamed = {(e["source"], e["seq"]) for e in run.events}
        on_disk = {(e["source"], e["seq"]) for e in run.disk_events}
        # The stream was read before shutdown; everything it served must
        # exist in the lossless on-disk record.
        assert streamed <= on_disk


class TestMetricsShapes:
    #: The /metrics JSON contract as of the pre-registry service (PR 9):
    #: these exact keys must survive the registry refactor byte-for-byte.
    LEGACY_TOP_KEYS = {
        "schema", "version", "started_at", "uptime_seconds", "queue",
        "jobs", "points", "result_cache", "trace_cache", "engine",
        "job_store", "storage", "replica", "fleet",
    }
    LEGACY_POINT_KEYS = {
        "requested", "unique", "completed", "executed", "from_cache",
        "shared_inflight", "remote_inflight", "remote_reclaimed",
        "per_minute",
    }

    def test_legacy_json_keys_are_intact(self, run):
        assert self.LEGACY_TOP_KEYS <= set(run.metrics)
        assert self.LEGACY_POINT_KEYS <= set(run.metrics["points"])
        assert set(run.metrics["queue"]) >= {
            "depth", "max_depth", "rejected_overloaded",
        }
        assert set(run.metrics["replica"]) >= {
            "id", "lease_ttl", "held_leases", "resumed_jobs",
            "adopted_jobs", "stolen_jobs",
        }

    def test_lifetime_rate_rides_alongside_the_window_rate(self, run):
        points = run.metrics["points"]
        assert "per_minute_lifetime" in points
        assert isinstance(points["per_minute"], float)
        assert points["completed"] >= 2

    def test_prometheus_scrape_passes_the_validating_parser(self, run):
        samples = parse_prometheus(run.prometheus)
        names = set(samples)
        assert "repro_points_completed_total" in names
        assert "repro_job_execute_seconds" in names
        completed = samples["repro_points_completed_total"][0]
        assert completed.value == run.metrics["points"]["completed"]
        assert dict(completed.labels)["replica"] == \
            run.metrics["replica"]["id"]


class TestDegradation:
    def test_events_endpoint_404s_without_a_bus(self):
        app = ServiceApp(cache_dir=None, jobs=1)  # no cache dir: no bus
        server = build_server(app, port=0)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        app.start()
        try:
            client = ServiceClient(
                f"http://127.0.0.1:{server.server_address[1]}", timeout=10.0
            )
            with pytest.raises(ServiceError) as info:
                list(client.events(since=0, stop_on_idle=True))
            assert info.value.code == "events_unavailable"
            # The breakdown helper degrades to None, never raises.
            assert client.job_span_breakdown("nope") is None
        finally:
            server.shutdown()
            server.server_close()
            app.stop()

    def test_bad_since_is_a_structured_400(self, tmp_path):
        app = ServiceApp(cache_dir=str(tmp_path), jobs=1)
        server = build_server(app, port=0)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        app.start()
        try:
            client = ServiceClient(
                f"http://127.0.0.1:{server.server_address[1]}", timeout=10.0
            )
            with pytest.raises(ServiceError) as info:
                client._request("GET", "/events?since=banana", raw=True)
            assert info.value.status == 400
        finally:
            server.shutdown()
            server.server_close()
            app.stop()
