"""Migration of legacy file-per-entry cache trees into the sharded store.

The fixture tree under ``tests/fixtures/legacy_cache_v1/`` was captured
from the pre-segment-log code: a figure6 plan (gcc, 300 instructions,
60 warmup) executed against an empty ``--cache-dir``, leaving three
result JSON files in the directory root and one gzip'd trace under
``traces/``.  Opening that tree under the new stores must import every
entry **byte for byte**, delete the legacy files, and make a re-run of
the very same figure plan a pure cache hit (``executed == 0``).
"""

import gzip
import json
import os
import shutil

import pytest

from repro.experiments.scheduler import execute_points
from repro.experiments.store import ResultStore
from repro.service import spec as spec_mod
from repro.storage.migrate import QUARANTINE_SUBDIR
from repro.trace.store import TraceStore

FIXTURE = os.path.join(os.path.dirname(__file__), "fixtures", "legacy_cache_v1")

#: The submission the fixture tree was captured from.
FIXTURE_SPEC = {
    "figure": "figure6",
    "settings": {
        "instructions": 300,
        "warmup_instructions": 60,
        "benchmarks": ["gcc"],
    },
}


def _legacy_tree(tmp_path):
    """A scratch copy of the fixture (migration mutates the tree)."""
    cache_dir = str(tmp_path / "cache")
    shutil.copytree(FIXTURE, cache_dir)
    return cache_dir


def _legacy_entries(cache_dir):
    """{key: raw bytes} of the legacy result files and trace files."""
    results = {}
    for name in os.listdir(cache_dir):
        if name.endswith(".json"):
            with open(os.path.join(cache_dir, name), "rb") as handle:
                results[name[: -len(".json")]] = handle.read()
    traces = {}
    trace_dir = os.path.join(cache_dir, "traces")
    for name in os.listdir(trace_dir):
        if name.endswith(".json.gz"):
            with open(os.path.join(trace_dir, name), "rb") as handle:
                traces[name[: -len(".json.gz")]] = handle.read()
    return results, traces


@pytest.fixture
def migrated(tmp_path):
    cache_dir = _legacy_tree(tmp_path)
    legacy_results, legacy_traces = _legacy_entries(cache_dir)
    assert len(legacy_results) == 3 and len(legacy_traces) == 1
    store = ResultStore(cache_dir=cache_dir)
    traces = TraceStore(cache_dir)
    return cache_dir, store, traces, legacy_results, legacy_traces


class TestMigration:
    def test_results_import_byte_identical(self, migrated):
        _, store, _, legacy_results, _ = migrated
        for key, raw in legacy_results.items():
            assert store._disk.get(key) == raw, key
            assert store.peek(key) is not None, key

    def test_traces_import_byte_identical(self, migrated):
        _, _, traces, _, legacy_traces = migrated
        for key, raw in legacy_traces.items():
            assert traces._disk.get(key) == raw, key
            assert traces.get(key) is not None, key

    def test_legacy_files_are_removed(self, migrated):
        cache_dir, _, _, _, _ = migrated
        leftover = [n for n in os.listdir(cache_dir) if n.endswith(".json")]
        assert leftover == []
        trace_leftover = [
            n for n in os.listdir(os.path.join(cache_dir, "traces"))
            if n.endswith(".json.gz")
        ]
        assert trace_leftover == []

    def test_rerun_of_fixture_plan_is_all_cache_hits(self, migrated):
        cache_dir, store, traces, legacy_results, _ = migrated
        plan = spec_mod.validate_submission(FIXTURE_SPEC)
        points = plan.plan_points()
        assert {p.store_key() for p in points} == set(legacy_results)
        summary = execute_points(points, store, jobs=1, trace_store=traces)
        assert summary["executed"] == 0
        assert summary["cached"] == summary["unique"] == len(legacy_results)

    def test_migration_is_idempotent(self, migrated):
        cache_dir, _, _, legacy_results, legacy_traces = migrated
        again = ResultStore(cache_dir=cache_dir)
        again_traces = TraceStore(cache_dir)
        for key, raw in legacy_results.items():
            assert again._disk.get(key) == raw
        for key, raw in legacy_traces.items():
            assert again_traces._disk.get(key) == raw
        # Exactly one live copy of each entry.
        assert sorted(again._disk.keys()) == sorted(legacy_results)
        assert sorted(again_traces._disk.keys()) == sorted(legacy_traces)


class TestMigrationQuarantine:
    def test_invalid_result_file_is_quarantined(self, tmp_path):
        cache_dir = _legacy_tree(tmp_path)
        bad = os.path.join(cache_dir, "deadbeef.json")
        with open(bad, "w", encoding="utf-8") as handle:
            handle.write("{not json")
        store = ResultStore(cache_dir=cache_dir)
        assert not os.path.exists(bad)
        quarantined = os.listdir(os.path.join(cache_dir, QUARANTINE_SUBDIR))
        assert quarantined == ["deadbeef.json"]
        assert store.peek("deadbeef") is None

    def test_key_mismatched_result_is_quarantined(self, tmp_path):
        cache_dir = _legacy_tree(tmp_path)
        legacy_results, _ = _legacy_entries(cache_dir)
        key, raw = next(iter(legacy_results.items()))
        wrong = "0" * 64
        with open(os.path.join(cache_dir, f"{wrong}.json"), "wb") as handle:
            handle.write(raw)  # payload says key=<key>, filename says <wrong>
        store = ResultStore(cache_dir=cache_dir)
        assert store.peek(wrong) is None
        assert f"{wrong}.json" in os.listdir(
            os.path.join(cache_dir, QUARANTINE_SUBDIR)
        )

    def test_invalid_trace_is_quarantined(self, tmp_path):
        cache_dir = _legacy_tree(tmp_path)
        trace_dir = os.path.join(cache_dir, "traces")
        bad_key = "f" * 64
        blob = gzip.compress(json.dumps({"key": "something-else"}).encode())
        with open(os.path.join(trace_dir, f"{bad_key}.json.gz"), "wb") as handle:
            handle.write(blob)
        traces = TraceStore(cache_dir)
        assert traces.get(bad_key) is None
        assert f"{bad_key}.json.gz" in os.listdir(
            os.path.join(trace_dir, QUARANTINE_SUBDIR)
        )
