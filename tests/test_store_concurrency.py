"""Concurrency and fault-injection suite for the storage + fleet layer.

This suite is the proof behind the traffic-grade claims:

* several *processes* hammer one sharded store (writers, readers and a
  compactor at once) without corruption;
* a writer SIGKILLed mid-stream never damages the log — every put that
  returned is durable, the torn tail is skipped by readers and
  truncated away by the next writer;
* store-level claims give cross-replica single-flight, including
  reclaim of a crashed claimer's points after its claim expires;
* a service replica killed mid-job has its lease expire and the job is
  stolen and completed by a surviving replica, with the dead replica's
  finished points served from the shared cache.

Child processes use the ``spawn`` start method: the parent runs service
threads, and forking a threaded process can deadlock the child.
"""

import hashlib
import json
import multiprocessing as mp
import os
import threading
import time

import pytest

from repro.experiments.scheduler import (
    SimulationPoint,
    SweepEngine,
    run_simulation_point,
)
from repro.experiments.store import ResultStore
from repro.pipeline.config import ProcessorConfig
from repro.service.app import ServiceApp
from repro.service.fleet import LeaseManager
from repro.service.jobs import COMPLETED, RUNNING, JobStore
from repro.storage import segment as seg
from repro.storage.sharded import ShardedStore
from repro.validate.differential import validation_matrix

_MP = mp.get_context("spawn")


def _wait_for(condition, timeout, message):
    deadline = time.time() + timeout
    while time.time() < deadline:
        if condition():
            return
        time.sleep(0.05)
    pytest.fail(f"timed out after {timeout}s waiting for {message}")


def _key(tag, index):
    return hashlib.sha256(f"{tag}-{index}".encode("utf-8")).hexdigest()


def _value_for(key):
    return (key * 3).encode("utf-8")


# ----------------------------------------------------------------------
# spawn-safe child entry points (must be module-level picklables)
# ----------------------------------------------------------------------


def _writer_main(root, tag, count):
    store = ShardedStore(root, num_shards=4)
    for index in range(count):
        key = _key(tag, index)
        store.put(key, _value_for(key))


def _reader_main(root, tags, count, iterations, error_path):
    store = ShardedStore(root, num_shards=4)
    for _ in range(iterations):
        for tag in tags:
            for index in range(count):
                key = _key(tag, index)
                value = store.get(key)
                if value is not None and value != _value_for(key):
                    with open(error_path, "a", encoding="utf-8") as handle:
                        handle.write(f"corrupt read for {key}\n")
                    return


def _compactor_main(root, stop_path):
    store = ShardedStore(root, num_shards=4)
    while not os.path.exists(stop_path):
        store.compact()
        time.sleep(0.01)


def _torn_victim_main(root, progress_path):
    """Append forever, recording every *completed* put; parent SIGKILLs."""
    store = ShardedStore(root, num_shards=1)
    index = 0
    while True:
        key = _key("victim", index)
        store.put(key, _value_for(key))
        with open(progress_path, "a", encoding="utf-8") as handle:
            handle.write(key + "\n")
            handle.flush()
        index += 1


def _victim_replica_main(cache_dir, spec_json, ready_path):
    """A doomed service replica: submit one job, run it, await SIGKILL."""
    app = ServiceApp(
        cache_dir=cache_dir, jobs=1, job_concurrency=1,
        replica_id="victim", lease_ttl=1.0, fleet_poll_interval=0.25,
        claim_ttl=1.0,
    )
    app.start()
    job = app.submit(json.loads(spec_json))
    tmp = ready_path + ".tmp"
    with open(tmp, "w", encoding="utf-8") as handle:
        handle.write(job.id)
    os.replace(tmp, ready_path)
    while True:
        time.sleep(0.05)


# ----------------------------------------------------------------------
# multi-process store hammering
# ----------------------------------------------------------------------


class TestConcurrentStore:
    WRITERS = 3
    COUNT = 30

    def test_parallel_writers_then_readback(self, tmp_path):
        root = str(tmp_path / "store")
        procs = [
            _MP.Process(target=_writer_main, args=(root, f"w{i}", self.COUNT))
            for i in range(self.WRITERS)
        ]
        for proc in procs:
            proc.start()
        for proc in procs:
            proc.join(timeout=60)
            assert proc.exitcode == 0
        fresh = ShardedStore(root, num_shards=4)
        for i in range(self.WRITERS):
            for index in range(self.COUNT):
                key = _key(f"w{i}", index)
                assert fresh.get(key) == _value_for(key), key
        assert fresh.stats()["entries"] == self.WRITERS * self.COUNT

    def test_writers_readers_and_compaction_concurrently(self, tmp_path):
        root = str(tmp_path / "store")
        stop_path = str(tmp_path / "stop")
        error_path = str(tmp_path / "errors")
        tags = [f"w{i}" for i in range(self.WRITERS)]
        writers = [
            _MP.Process(target=_writer_main, args=(root, tag, self.COUNT))
            for tag in tags
        ]
        readers = [
            _MP.Process(target=_reader_main,
                        args=(root, tags, self.COUNT, 4, error_path))
            for _ in range(2)
        ]
        compactor = _MP.Process(target=_compactor_main, args=(root, stop_path))
        for proc in writers + readers + [compactor]:
            proc.start()
        try:
            for proc in writers + readers:
                proc.join(timeout=120)
                assert proc.exitcode == 0
        finally:
            with open(stop_path, "w", encoding="utf-8"):
                pass
            compactor.join(timeout=30)
        assert compactor.exitcode == 0
        assert not os.path.exists(error_path), open(error_path).read()
        fresh = ShardedStore(root, num_shards=4)
        for tag in tags:
            for index in range(self.COUNT):
                key = _key(tag, index)
                assert fresh.get(key) == _value_for(key), key


# ----------------------------------------------------------------------
# torn tails
# ----------------------------------------------------------------------


def _only_segment(root):
    shard_dir = os.path.join(root, "shard-00")
    names = [n for n in os.listdir(shard_dir)
             if n.startswith("seg-") and n.endswith(".log")]
    assert len(names) == 1, names
    return os.path.join(shard_dir, names[0])


class TestTornTail:
    def test_reader_skips_torn_tail(self, tmp_path):
        root = str(tmp_path / "store")
        store = ShardedStore(root, num_shards=1)
        key = _key("torn", 0)
        store.put(key, _value_for(key))
        # A header that promises more payload than follows: the classic
        # shape left by a writer killed between write() and completion.
        with open(_only_segment(root), "ab") as handle:
            handle.write(seg.pack_record({"k": "x", "op": "put", "t": 0.0},
                                         b"y" * 100)[:40])
        fresh = ShardedStore(root, num_shards=1)
        assert fresh.get(key) == _value_for(key)
        assert fresh.stats()["torn_tails"] >= 1

    def test_next_writer_truncates_torn_tail(self, tmp_path):
        root = str(tmp_path / "store")
        store = ShardedStore(root, num_shards=1)
        first = _key("torn", 1)
        store.put(first, _value_for(first))
        with open(_only_segment(root), "ab") as handle:
            handle.write(b"\xde\xad\xbe\xef garbage tail")
        second = _key("torn", 2)
        writer = ShardedStore(root, num_shards=1)
        writer.put(second, _value_for(second))
        # The torn bytes are gone: a full scan decodes cleanly end to end.
        records, _, torn = seg.scan_segment(_only_segment(root))
        assert not torn
        assert [record.meta["k"] for record in records] == [first, second]
        fresh = ShardedStore(root, num_shards=1)
        assert fresh.get(first) == _value_for(first)
        assert fresh.get(second) == _value_for(second)

    def test_writer_killed_mid_stream_loses_nothing_durable(self, tmp_path):
        root = str(tmp_path / "store")
        progress_path = str(tmp_path / "progress")
        victim = _MP.Process(target=_torn_victim_main,
                             args=(root, progress_path))
        victim.start()
        try:
            _wait_for(
                lambda: os.path.exists(progress_path)
                and len(open(progress_path).readlines()) >= 10,
                timeout=60, message="the victim writer to make progress",
            )
        finally:
            victim.kill()  # SIGKILL: no cleanup, possibly mid-append
            victim.join(timeout=30)
        with open(progress_path, "r", encoding="utf-8") as handle:
            durable = [line.strip() for line in handle if line.strip()]
        assert len(durable) >= 10
        fresh = ShardedStore(root, num_shards=1)
        for key in durable:
            assert fresh.get(key) == _value_for(key), key
        # The log still accepts (and survives) new writes.
        extra = _key("after-crash", 0)
        fresh.put(extra, _value_for(extra))
        reopened = ShardedStore(root, num_shards=1)
        assert reopened.get(extra) == _value_for(extra)
        for key in durable:
            assert reopened.get(key) == _value_for(key), key


# ----------------------------------------------------------------------
# claims: cross-replica single-flight
# ----------------------------------------------------------------------


def _point(instructions=400):
    return SimulationPoint(
        benchmark="gcc",
        factory=validation_matrix()["monolithic-1c"],
        architecture="mono-1c",
        config=ProcessorConfig(max_instructions=instructions),
    )


class TestClaims:
    def test_claim_conflicts_until_expiry(self, tmp_path):
        clock = [100.0]
        store = ShardedStore(str(tmp_path / "s"), num_shards=1,
                             clock=lambda: clock[0])
        ok, holder = store.claim("aa" * 32, "replica-a", ttl=10.0)
        assert ok and holder == "replica-a"
        ok, holder = store.claim("aa" * 32, "replica-b", ttl=10.0)
        assert not ok and holder == "replica-a"
        clock[0] += 11.0  # the claim expires; b may now take it
        ok, holder = store.claim("aa" * 32, "replica-b", ttl=10.0)
        assert ok and holder == "replica-b"

    def test_put_supersedes_claim(self, tmp_path):
        store = ShardedStore(str(tmp_path / "s"), num_shards=1)
        key = "bb" * 32
        assert store.claim(key, "replica-a", ttl=60.0)[0]
        store.put(key, b"result")
        assert store.claim_holder(key) is None
        # With a value present, claiming reports "just read it".
        assert store.claim(key, "replica-b", ttl=60.0) == (False, None)

    def test_engine_waits_for_remotely_claimed_point(self, tmp_path):
        """Replica B never executes a point A is computing — it polls
        until A's result lands in the shared store."""
        cache = str(tmp_path / "cache")
        point = _point()
        key = point.store_key()
        stats = run_simulation_point(point)  # "A's" computation

        store_a = ResultStore(cache_dir=cache, owner="replica-a")
        assert store_a.claim_point(key, ttl=60.0)[0]

        def remote_completes():
            time.sleep(0.3)
            store_a.put(key, stats, metadata=point.metadata())

        publisher = threading.Thread(target=remote_completes)
        publisher.start()
        store_b = ResultStore(cache_dir=cache, owner="replica-b")
        engine = SweepEngine(store=store_b, jobs=1, claim_poll_interval=0.02)
        summary = engine.execute([point])
        publisher.join()
        assert summary["remote_inflight"] == 1
        assert summary["executed"] == 0
        assert summary["remote_reclaimed"] == 0
        assert store_b.peek(key) is not None

    def test_engine_reclaims_expired_remote_claim(self, tmp_path):
        """A crashed claimer's points are reclaimed and executed locally."""
        cache = str(tmp_path / "cache")
        point = _point()
        key = point.store_key()
        store_a = ResultStore(cache_dir=cache, owner="replica-a")
        assert store_a.claim_point(key, ttl=0.3)[0]  # then "a" crashes

        store_b = ResultStore(cache_dir=cache, owner="replica-b")
        engine = SweepEngine(store=store_b, jobs=1, claim_ttl=30.0,
                             claim_poll_interval=0.02)
        summary = engine.execute([point])
        assert summary["remote_inflight"] == 1
        assert summary["remote_reclaimed"] == 1
        assert summary["executed"] == 1
        assert store_b.peek(key) is not None


# ----------------------------------------------------------------------
# leases
# ----------------------------------------------------------------------


class TestLeases:
    def test_acquire_conflict_renew_and_expiry(self, tmp_path):
        clock = [50.0]
        a = LeaseManager(str(tmp_path), owner="a", ttl=10.0,
                         clock=lambda: clock[0])
        b = LeaseManager(str(tmp_path), owner="b", ttl=10.0,
                         clock=lambda: clock[0])
        assert a.acquire("job1")
        assert not b.acquire("job1")
        assert a.holder("job1")[0] == "a"
        clock[0] += 8.0
        a.renew_held()  # the heartbeat pushes the deadline forward
        clock[0] += 8.0  # 16s after acquire, 8s after renewal: still live
        assert not b.acquire("job1")
        clock[0] += 3.0  # renewal expired; b may steal
        assert b.acquire("job1")
        assert b.holder("job1")[0] == "b"
        # a's stale renewal must not clobber the thief's lease.
        a.renew_held()
        assert b.holder("job1")[0] == "b"
        assert "job1" not in a.held()

    def test_release_is_owner_scoped(self, tmp_path):
        a = LeaseManager(str(tmp_path), owner="a", ttl=30.0)
        b = LeaseManager(str(tmp_path), owner="b", ttl=30.0)
        assert a.acquire("job2")
        b.release("job2")  # not b's to release
        assert a.holder("job2")[0] == "a"
        a.release("job2")
        assert a.holder("job2") is None


# ----------------------------------------------------------------------
# fleet: work-stealing and cross-replica dedup
# ----------------------------------------------------------------------

_FLEET_SPEC = {
    "figure": "figure6",
    "settings": {"instructions": 1500, "warmup_instructions": 0,
                 "benchmarks": ["gcc"]},
}

_SLOW_SPEC = {
    "figure": "figure6",
    "settings": {"instructions": 20000, "warmup_instructions": 0,
                 "benchmarks": ["gcc"]},
}


class TestFleet:
    def test_two_live_replicas_never_execute_a_point_twice(self, tmp_path):
        cache = str(tmp_path / "cache")
        app_a = ServiceApp(cache_dir=cache, jobs=2, job_concurrency=1,
                           replica_id="fleet-a", lease_ttl=5.0,
                           fleet_poll_interval=0.2)
        app_b = ServiceApp(cache_dir=cache, jobs=1, job_concurrency=1,
                           replica_id="fleet-b", lease_ttl=5.0,
                           fleet_poll_interval=0.2)
        app_a.start()
        app_b.start()
        try:
            job_a = app_a.submit(dict(_FLEET_SPEC))
            job_b = app_b.submit(dict(_FLEET_SPEC))
            unique = job_a.points["unique"]
            assert unique > 0 and job_b.points["unique"] == unique
            _wait_for(
                lambda: app_a.get_job(job_a.id).state == COMPLETED
                and app_b.get_job(job_b.id).state == COMPLETED,
                timeout=120, message="both replicas' jobs to complete",
            )
        finally:
            app_a.stop(drain=True, timeout=60)
            app_b.stop(drain=True, timeout=60)
        totals_a = app_a.engine.totals()
        totals_b = app_b.engine.totals()
        # The heart of the fleet guarantee: across both replicas, every
        # unique point was executed exactly once.
        assert totals_a["executed"] + totals_b["executed"] == unique
        assert totals_a["remote_reclaimed"] == totals_b["remote_reclaimed"] == 0
        # And the aggregated metrics agree (what CI asserts over HTTP).
        fleet = app_a.metrics()["fleet"]
        assert fleet["points"]["executed"] == unique
        assert fleet["known_replicas"] >= 2

    def test_dead_replica_job_is_stolen_and_completed(self, tmp_path):
        cache = str(tmp_path / "cache")
        ready_path = str(tmp_path / "victim-job-id")
        survivor = ServiceApp(cache_dir=cache, jobs=1, job_concurrency=1,
                              replica_id="survivor", lease_ttl=1.0,
                              fleet_poll_interval=0.5, claim_ttl=1.0)
        survivor.start()
        victim = _MP.Process(
            target=_victim_replica_main,
            args=(cache, json.dumps(_SLOW_SPEC), ready_path),
        )
        victim.start()
        try:
            _wait_for(lambda: os.path.exists(ready_path), timeout=120,
                      message="the victim replica to submit its job")
            with open(ready_path, "r", encoding="utf-8") as handle:
                job_id = handle.read().strip()
            job_store = JobStore(cache)
            leases = LeaseManager(cache, owner="observer", ttl=1.0)

            def victim_is_running():
                job = job_store.load(job_id)
                holder = leases.holder(job_id)
                return (job is not None and job.state == RUNNING
                        and holder is not None and holder[0] == "victim")

            _wait_for(victim_is_running, timeout=120,
                      message="the victim to start running its job")
            time.sleep(0.4)  # let it finish some (not all) points
        finally:
            victim.kill()  # SIGKILL mid-job: no drain, no lease release
            victim.join(timeout=30)
        try:
            def stolen_and_completed():
                job = survivor.queue.get(job_id)
                return job is not None and job.state == COMPLETED

            _wait_for(stolen_and_completed, timeout=180,
                      message="the survivor to steal and finish the job")
        finally:
            survivor.stop(drain=True, timeout=120)
        job = survivor.get_job(job_id)
        assert job.state == COMPLETED
        assert job.points["completed"] == job.points["unique"] > 0
        assert survivor.stolen_jobs >= 1
        # Every point of the stolen job is present in the shared store;
        # whatever the victim finished was reused, not recomputed after
        # its claims expired (reclaim or cache hit, never a duplicate
        # while the victim lived).
        totals = survivor.engine.totals()
        assert totals["executed"] + totals["cached"] >= job.points["unique"]