"""Trace-once / replay-many: bit-identity, store behaviour, scheduler keys.

The contract of :mod:`repro.trace` is exact: a replayed point must
reproduce the live run's :class:`~repro.pipeline.stats.SimulationStats`
(including ``commit_checksum`` when a commit observer is attached) bit
for bit, for **every** register-file architecture, from one recording.
These tests lock that contract down, together with the trace store's
negative paths and the rule that replay never changes a point's
result-store key.
"""

from __future__ import annotations

import gzip
import json
import os

import pytest

from repro.experiments.scheduler import (
    SimulationPoint,
    execute_points,
    run_simulation_point,
)
from repro.experiments.store import ResultStore
from repro.pipeline.config import ProcessorConfig
from repro.pipeline.processor import simulate
from repro.trace import (
    TRACE_SCHEMA_VERSION,
    DecodedTrace,
    TraceStore,
    record_trace,
    replay_simulate,
    trace_key,
)
from repro.validate.differential import validation_matrix
from repro.validate.observer import CommitObserver
from repro.workloads.profiles import get_profile
from repro.workloads.synthetic import SyntheticWorkload

N = 2000


def _stream(benchmark: str, count: int):
    return SyntheticWorkload(get_profile(benchmark)).instructions(count)


def _workload_id(benchmark: str, count: int) -> dict:
    return {"kind": "synthetic-profile", "benchmark": benchmark,
            "instructions": count}


@pytest.fixture(scope="module")
def gcc_trace():
    config = ProcessorConfig(max_instructions=N)
    return record_trace("gcc", _stream("gcc", N), config, _workload_id("gcc", N))


class TestReplayBitIdentity:
    @pytest.mark.parametrize("name", sorted(validation_matrix()))
    def test_replay_matches_live_for_every_architecture(self, gcc_trace, name):
        factory = validation_matrix()[name]
        config = ProcessorConfig(max_instructions=N)
        live = simulate(_stream("gcc", N), factory, config, benchmark_name="gcc")
        replayed = replay_simulate(gcc_trace, factory, config, benchmark_name="gcc")
        assert replayed.to_dict() == live.to_dict()

    def test_commit_checksum_matches_live(self, gcc_trace):
        factory = validation_matrix()["rfc-non-bypass"]
        config = ProcessorConfig(max_instructions=N)
        live = simulate(_stream("gcc", N), factory, config,
                        benchmark_name="gcc", commit_observer=CommitObserver())
        replayed = replay_simulate(gcc_trace, factory, config,
                                   benchmark_name="gcc",
                                   commit_observer=CommitObserver())
        assert live.commit_checksum is not None
        assert replayed.commit_checksum == live.commit_checksum
        assert replayed.to_dict() == live.to_dict()

    def test_backend_config_shares_the_trace(self, gcc_trace):
        """Backend fields (register budget) do not enter the trace key;
        a perturbed backend replays bit-identically from the same trace."""
        factory = validation_matrix()["monolithic-2c-full-bypass"]
        config = ProcessorConfig(
            max_instructions=N, num_int_physical=48, num_fp_physical=48
        )
        assert trace_key(_workload_id("gcc", N), config) == gcc_trace.key
        live = simulate(_stream("gcc", N), factory, config, benchmark_name="gcc")
        replayed = replay_simulate(gcc_trace, factory, config, benchmark_name="gcc")
        assert replayed.to_dict() == live.to_dict()

    def test_truncated_commit_budget_with_stream_slack(self):
        """Bench-style runs stop at the commit cap with stream left over;
        the full-stream recording still replays them bit-identically."""
        count = int(N * 1.5)
        config = ProcessorConfig(max_instructions=N)
        trace = record_trace("swim", _stream("swim", count), config,
                             _workload_id("swim", count))
        for name in ("monolithic-1c", "banked-4x2r2w", "rfc-ready"):
            factory = validation_matrix()[name]
            live = simulate(_stream("swim", count), factory, config,
                            benchmark_name="swim")
            replayed = replay_simulate(trace, factory, config,
                                       benchmark_name="swim")
            assert replayed.to_dict() == live.to_dict(), name

    def test_frontend_config_changes_the_key(self):
        config = ProcessorConfig(max_instructions=N)
        narrow = config.with_overrides(fetch_width=4)
        assert (trace_key(_workload_id("gcc", N), config)
                != trace_key(_workload_id("gcc", N), narrow))

    def test_sequential_replays_of_one_trace(self, gcc_trace):
        """Replayers share prebuilt groups; back-to-back runs must not
        contaminate each other."""
        factory = validation_matrix()["monolithic-1c"]
        config = ProcessorConfig(max_instructions=N)
        first = replay_simulate(gcc_trace, factory, config)
        second = replay_simulate(gcc_trace, factory, config)
        assert first.to_dict() == second.to_dict()


class TestTraceStore:
    def test_round_trip_through_disk(self, gcc_trace, tmp_path):
        store = TraceStore(str(tmp_path))
        store.put(gcc_trace)
        fresh = TraceStore(str(tmp_path))
        loaded = fresh.get(gcc_trace.key)
        assert loaded is not None
        assert loaded.to_payload() == gcc_trace.to_payload()
        factory = validation_matrix()["rfc-always-demand"]
        config = ProcessorConfig(max_instructions=N)
        assert (replay_simulate(loaded, factory, config).to_dict()
                == replay_simulate(gcc_trace, factory, config).to_dict())

    def test_memory_tier_returns_same_object(self, gcc_trace, tmp_path):
        store = TraceStore(str(tmp_path))
        store.put(gcc_trace)
        assert store.get(gcc_trace.key) is gcc_trace
        assert store.counters()["memory_hits"] == 1

    @staticmethod
    def _segment_files(trace_dir):
        return [
            os.path.join(root, name)
            for root, _, names in os.walk(trace_dir)
            for name in names
            if name.startswith("seg-") and name.endswith(".log")
        ]

    def test_schema_mismatch_is_a_miss(self, gcc_trace, tmp_path):
        store = TraceStore(str(tmp_path))
        payload = gcc_trace.to_payload()
        payload["schema"] = TRACE_SCHEMA_VERSION + 1
        store._disk.put(gcc_trace.key,
                        gzip.compress(json.dumps(payload).encode("utf-8")))
        assert TraceStore(str(tmp_path)).get(gcc_trace.key) is None

    def test_corrupt_segment_is_a_miss(self, gcc_trace, tmp_path):
        store = TraceStore(str(tmp_path))
        store.put(gcc_trace)
        segments = self._segment_files(store.trace_dir)
        assert segments, "trace store wrote no segment files"
        for path in segments:
            with open(path, "wb") as handle:
                handle.write(b"not a segment record at all")
        assert TraceStore(str(tmp_path)).get(gcc_trace.key) is None

    def test_truncated_segment_is_a_miss(self, gcc_trace, tmp_path):
        """A torn tail (writer killed mid-append) reads as a miss."""
        store = TraceStore(str(tmp_path))
        store.put(gcc_trace)
        for path in self._segment_files(store.trace_dir):
            with open(path, "rb") as handle:
                blob = handle.read()
            with open(path, "wb") as handle:
                handle.write(blob[: len(blob) // 2])
        assert TraceStore(str(tmp_path)).get(gcc_trace.key) is None

    def test_truncated_gzip_payload_is_a_miss(self, gcc_trace, tmp_path):
        store = TraceStore(str(tmp_path))
        store.put(gcc_trace)
        raw = store._disk.get(gcc_trace.key)
        store._disk.put(gcc_trace.key, raw[: len(raw) // 2])
        assert TraceStore(str(tmp_path)).get(gcc_trace.key) is None

    def test_key_mismatch_is_a_miss(self, gcc_trace, tmp_path):
        """A trace stored under the wrong filename must not be served."""
        store = TraceStore(str(tmp_path))
        payload = gcc_trace.to_payload()
        wrong_key = "0" * 64
        with gzip.open(os.path.join(store.trace_dir, f"{wrong_key}.json.gz"),
                       "wt", encoding="utf-8") as handle:
            json.dump(payload, handle)
        assert TraceStore(str(tmp_path)).get(wrong_key) is None

    def test_malformed_payload_rejected(self):
        with pytest.raises(Exception):
            DecodedTrace.from_payload({"schema": TRACE_SCHEMA_VERSION})

    def test_event_coverage_validated(self, gcc_trace):
        payload = gcc_trace.to_payload()
        payload["events"] = payload["events"][:-1]
        with pytest.raises(Exception):
            DecodedTrace.from_payload(payload)

    def test_memory_only_store(self, gcc_trace):
        store = TraceStore(None)
        store.put(gcc_trace)
        assert store.get(gcc_trace.key) is gcc_trace


class TestCacheDirCoexistence:
    """One ``--cache-dir`` serves results and traces without collision."""

    def test_result_and_trace_stores_share_a_directory(self, tmp_path):
        cache_dir = str(tmp_path)
        results = ResultStore(cache_dir=cache_dir)
        factory = validation_matrix()["monolithic-1c"]
        config = ProcessorConfig(max_instructions=500)
        point = SimulationPoint(benchmark="gcc", factory=factory,
                                architecture="mono-1c", config=config)
        execute_points([point], results, jobs=1, use_trace_replay=True)

        # Results live in segment logs under results/, traces under
        # traces/; a fresh ResultStore must not mistake the trace for a
        # result and a fresh TraceStore must not see the result payload.
        def segment_files(subdir):
            return [
                os.path.join(root, name)
                for root, _, names in os.walk(os.path.join(cache_dir, subdir))
                for name in names
                if name.startswith("seg-") and name.endswith(".log")
            ]

        assert segment_files("results"), "result segments missing"
        assert segment_files("traces"), "trace segments missing"

        fresh_results = ResultStore(cache_dir=cache_dir)
        assert fresh_results.peek(point.store_key()) is not None
        fresh_traces = TraceStore(cache_dir)
        assert fresh_traces.get(point.trace_key()) is not None
        # A result key can never resolve in the trace store and vice versa.
        assert fresh_traces.get(point.store_key()) is None
        assert fresh_results.peek(point.trace_key()) is None


class TestReplayIsNotAConfigField:
    """Replay is an execution strategy: result keys must not change."""

    def _points(self):
        config = ProcessorConfig(max_instructions=800)
        return [
            SimulationPoint(benchmark="gcc", factory=factory,
                            architecture=name, config=config)
            for name, factory in list(validation_matrix().items())[:4]
        ]

    def test_replayed_and_live_runs_share_result_keys(self, tmp_path):
        cache_dir = str(tmp_path)
        replay_store = ResultStore(cache_dir=cache_dir)
        summary = execute_points(self._points(), replay_store, jobs=1,
                                 use_trace_replay=True)
        assert summary["executed"] == 4
        assert summary["traces_recorded"] == 1

        # A later *live* run over the same cache-dir must hit every entry.
        live_store = ResultStore(cache_dir=cache_dir)
        summary = execute_points(self._points(), live_store, jobs=1,
                                 use_trace_replay=False)
        assert summary["executed"] == 0
        assert summary["cached"] == 4

    def test_replayed_results_equal_live_results(self):
        replay_store = ResultStore()
        live_store = ResultStore()
        points = self._points()
        execute_points(points, replay_store, jobs=1, use_trace_replay=True)
        execute_points(points, live_store, jobs=1, use_trace_replay=False)
        for point in points:
            key = point.store_key()
            assert (replay_store.get(key).to_dict()
                    == live_store.get(key).to_dict()), point.architecture

    def test_recording_harvest_matches_live(self):
        """The recording run doubles as the first point's result; it must
        equal that point's live run exactly."""
        config = ProcessorConfig(max_instructions=800)
        factory = validation_matrix()["rfc-non-bypass"]
        point = SimulationPoint(benchmark="swim", factory=factory,
                                architecture="rfc", config=config)
        from repro.experiments.scheduler import record_point_trace

        _, harvested = record_point_trace(point)
        assert harvested is not None
        live = run_simulation_point(point)
        assert harvested.to_dict() == live.to_dict()

    def test_parallel_batched_replay_matches_serial(self, tmp_path):
        """The warm-worker path (record task + trace batches) produces the
        same results as the serial path, with traces shipped via disk."""
        from repro.experiments.scheduler import shutdown_pool

        points = self._points()
        serial_store = ResultStore()
        execute_points(points, serial_store, jobs=1, use_trace_replay=True)
        parallel_store = ResultStore(cache_dir=str(tmp_path))
        try:
            summary = execute_points(points, parallel_store, jobs=2,
                                     use_trace_replay=True)
        finally:
            shutdown_pool()
        assert summary["executed"] == 4
        for point in points:
            key = point.store_key()
            assert (parallel_store.get(key).to_dict()
                    == serial_store.get(key).to_dict()), point.architecture

    def test_occupancy_point_is_not_harvested_but_replays(self):
        config = ProcessorConfig(max_instructions=600, collect_occupancy=True)
        factory = validation_matrix()["monolithic-1c"]
        point = SimulationPoint(benchmark="gcc", factory=factory,
                                architecture="mono", config=config)
        from repro.experiments.scheduler import record_point_trace

        trace, harvested = record_point_trace(point)
        assert harvested is None  # occupancy collection disables the harvest
        live = run_simulation_point(point)
        replayed = run_simulation_point(point, trace)
        assert replayed.to_dict() == live.to_dict()
        assert replayed.occupancy_needed  # the distribution was collected
