"""Tests for the differential runner, fault injection and report schema."""

from __future__ import annotations

import json

import pytest

from repro.errors import ValidationError
from repro.pipeline.config import ProcessorConfig
from repro.validate.differential import (
    filter_matrix,
    run_differential,
    validation_matrix,
)
from repro.validate.faults import InjectedFault, corrupt_instruction
from repro.validate.fuzzer import generate_scenario
from repro.validate.report import (
    Divergence,
    ScenarioValidation,
    ValidationReport,
)
from repro.workloads.kernels import kernel_workload
from repro.workloads.trace import materialize


@pytest.fixture(scope="module")
def kernel_trace():
    return materialize("dot_product", kernel_workload("dot_product", 600))


@pytest.fixture(scope="module")
def small_matrix():
    matrix = validation_matrix()
    return {
        name: matrix[name]
        for name in ("monolithic-1c", "banked-2x2r2w", "rfc-never-demand")
    }


class TestValidationMatrix:
    def test_covers_all_three_architecture_families(self):
        families = {type(factory).__name__ for factory in validation_matrix().values()}
        assert families == {
            "SingleBankedFactory",
            "OneLevelBankedFactory",
            "RegisterFileCacheFactory",
        }

    def test_covers_every_caching_policy(self):
        cached = [
            factory for factory in validation_matrix().values()
            if type(factory).__name__ == "RegisterFileCacheFactory"
        ]
        assert {factory.caching for factory in cached} == {
            "non-bypass", "ready", "always", "never",
        }
        assert {factory.fetch for factory in cached} == {
            "prefetch-first-pair", "fetch-on-demand",
        }

    def test_filter_matrix(self):
        selected = filter_matrix(validation_matrix(), "banked")
        assert set(selected) == {"banked-2x2r2w", "banked-4x2r2w"}

    def test_filter_matrix_rejects_unmatched(self):
        with pytest.raises(ValidationError, match="nothing"):
            filter_matrix(validation_matrix(), "zzz")


class TestRunDifferential:
    def test_all_architectures_agree_with_oracle(self, kernel_trace, small_matrix):
        config = ProcessorConfig(max_instructions=400)
        result = run_differential(kernel_trace, config, small_matrix)
        assert result.ok
        assert len(result.outcomes) == len(small_matrix)
        digests = {outcome.digest for outcome in result.outcomes}
        assert digests == {result.oracle["digest"]}
        counts = {outcome.count for outcome in result.outcomes}
        assert counts == {result.oracle["count"]}
        # Timing differs even though architecture state agrees.
        assert len({outcome.cycles for outcome in result.outcomes}) > 1

    def test_budget_bounds_the_committed_prefix(self, kernel_trace, small_matrix):
        config = ProcessorConfig(max_instructions=100)
        result = run_differential(kernel_trace, config, small_matrix)
        assert result.ok
        assert result.oracle["count"] == 100

    def test_rejects_empty_matrix(self, kernel_trace):
        with pytest.raises(ValidationError, match="at least one"):
            run_differential(kernel_trace, ProcessorConfig(max_instructions=50), {})

    def test_rejects_fault_on_unknown_architecture(self, kernel_trace, small_matrix):
        fault = InjectedFault(architecture="nope", commit_index=3)
        with pytest.raises(ValidationError, match="unknown architecture"):
            run_differential(
                kernel_trace, ProcessorConfig(max_instructions=50),
                small_matrix, fault=fault,
            )


class TestFaultInjection:
    def test_injected_fault_is_detected_at_exact_commit(self, kernel_trace, small_matrix):
        fault = InjectedFault(architecture="banked-2x2r2w", commit_index=37)
        config = ProcessorConfig(max_instructions=300)
        result = run_differential(
            kernel_trace, config, small_matrix, fault=fault,
            repro="python -m repro.validate --seed 99",
        )
        assert not result.ok
        assert len(result.divergences) == 1
        divergence = result.divergences[0]
        assert divergence.architecture == "banked-2x2r2w"
        assert divergence.kind == "commit_stream"
        assert divergence.first_divergent_commit == 37
        assert divergence.expected_record != divergence.observed_record
        assert divergence.repro == "python -m repro.validate --seed 99"
        # The untouched architectures still agree with the oracle.
        clean = [o for o in result.outcomes if o.architecture != "banked-2x2r2w"]
        assert all(o.digest == result.oracle["digest"] for o in clean)

    def test_fault_detection_is_seed_reproducible(self, small_matrix):
        fault = InjectedFault(architecture="monolithic-1c", commit_index=11)
        firsts = []
        for _ in range(2):
            scenario = generate_scenario(5, quick=True)
            result = run_differential(
                scenario.build_trace(), scenario.config(), small_matrix,
                fault=fault,
            )
            assert not result.ok
            firsts.append(result.divergences[0].first_divergent_commit)
        assert firsts == [11, 11]

    def test_fault_beyond_committed_prefix_still_fails_the_run(
        self, kernel_trace, small_matrix
    ):
        # A fault that never fires must not yield a clean verdict — the
        # self-test of the detector would pass vacuously otherwise.
        fault = InjectedFault(architecture="monolithic-1c", commit_index=10**6)
        config = ProcessorConfig(max_instructions=120)
        result = run_differential(kernel_trace, config, small_matrix, fault=fault)
        assert not result.ok
        assert [d.kind for d in result.divergences] == ["fault_not_triggered"]
        assert "never fired" in result.divergences[0].detail

    def test_corrupt_instruction_changes_destination(self, kernel_trace):
        original = kernel_trace[0]
        corrupted = corrupt_instruction(original)
        assert corrupted.dest != original.dest
        assert corrupted.seq == original.seq

    def test_fault_spec_parsing(self):
        fault = InjectedFault.parse("rfc-non-bypass:12")
        assert fault.architecture == "rfc-non-bypass"
        assert fault.commit_index == 12
        with pytest.raises(ValidationError):
            InjectedFault.parse("no-colon")
        with pytest.raises(ValidationError):
            InjectedFault.parse("arch:notanint")
        with pytest.raises(ValidationError):
            InjectedFault(architecture="x", commit_index=-1)


class TestReportSchema:
    def test_scenario_validation_round_trips(self, kernel_trace, small_matrix):
        config = ProcessorConfig(max_instructions=120)
        result = run_differential(kernel_trace, config, small_matrix)
        rebuilt = ScenarioValidation.from_dict(
            json.loads(json.dumps(result.to_dict()))
        )
        assert rebuilt.ok == result.ok
        assert rebuilt.oracle == result.oracle
        assert [o.digest for o in rebuilt.outcomes] == [
            o.digest for o in result.outcomes
        ]

    def test_report_save_load_render(self, tmp_path):
        report = ValidationReport(
            created="2026-07-30T00:00:00+00:00",
            quick=True,
            seeds=[1, 2],
            architectures=["monolithic-1c"],
            scenarios=[
                ScenarioValidation(
                    scenario={"seed": 1, "source": "kernel", "benchmark": "x"},
                    oracle={"count": 10, "digest": "d"},
                ),
                ScenarioValidation(
                    scenario={"seed": 2, "source": "program", "benchmark": "y"},
                    oracle={"count": 5, "digest": "e"},
                    divergences=[
                        Divergence(
                            architecture="monolithic-1c",
                            kind="commit_stream",
                            detail="boom",
                            first_divergent_commit=3,
                            repro="python -m repro.validate --seed 2",
                        )
                    ],
                ),
            ],
        )
        assert not report.ok
        assert report.divergence_count == 1
        path = report.save(str(tmp_path / "validate.json"))
        loaded = ValidationReport.load(path)
        assert loaded.divergence_count == 1
        assert loaded.scenarios[1].divergences[0].first_divergent_commit == 3
        rendered = report.render()
        assert "verdict: DIVERGENT" in rendered
        assert "repro" in rendered

    def test_load_rejects_unknown_schema(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"schema": 999}), encoding="utf-8")
        with pytest.raises(ValidationError, match="schema"):
            ValidationReport.load(str(path))

    def test_load_rejects_malformed_file(self, tmp_path):
        path = tmp_path / "mangled.json"
        path.write_text("{not json", encoding="utf-8")
        with pytest.raises(ValidationError, match="cannot read"):
            ValidationReport.load(str(path))
