"""Tests for the scenario fuzzer, the seed runner and the CLI."""

from __future__ import annotations

import json
import random

import pytest

from repro.isa.assembler import assemble
from repro.validate.__main__ import main
from repro.validate.fuzzer import FuzzScenario, generate_scenario, random_program
from repro.validate.oracle import run_oracle
from repro.validate.runner import SeedTask, run_seed, run_validation


class TestScenarioGeneration:
    def test_same_seed_same_scenario(self):
        assert generate_scenario(7, quick=True) == generate_scenario(7, quick=True)

    def test_different_seeds_differ(self):
        scenarios = {generate_scenario(seed, quick=True) for seed in range(1, 15)}
        assert len(scenarios) > 1

    def test_scenario_sources_are_all_reachable(self):
        sources = {
            generate_scenario(seed, quick=True).source for seed in range(1, 40)
        }
        assert sources == {"synthetic", "kernel", "program"}

    def test_config_point_is_constructible_and_random(self):
        configs = {
            generate_scenario(seed, quick=True).config_fields
            for seed in range(1, 12)
        }
        assert len(configs) > 1
        for seed in range(1, 12):
            config = generate_scenario(seed, quick=True).config()
            assert config.num_int_physical > 32

    def test_trace_build_is_deterministic(self):
        scenario = generate_scenario(3, quick=True)
        first = run_oracle(iter(scenario.build_trace()), scenario.instructions)
        second = run_oracle(iter(scenario.build_trace()), scenario.instructions)
        assert first.digest == second.digest

    def test_describe_is_json_serializable(self):
        for seed in range(1, 8):
            descriptor = generate_scenario(seed, quick=True).describe()
            assert json.loads(json.dumps(descriptor))["seed"] == seed


class TestRandomProgram:
    @pytest.mark.parametrize("seed", range(1, 21))
    def test_generated_programs_assemble_and_terminate(self, seed):
        text = random_program(random.Random(f"test:{seed}"))
        program = assemble(text)
        trace = list(program.run(max_instructions=50_000))
        # Termination by construction: the run must fall off the end well
        # before the safety cap.
        assert 0 < len(trace) < 50_000

    def test_program_scenarios_produce_valid_streams(self):
        scenario = FuzzScenario(
            seed=0, source="program", benchmark="p", workload_seed=0,
            instructions=200, stream_slack=0,
            program_text=random_program(random.Random("x")),
        )
        trace = scenario.build_trace()
        run_oracle(iter(trace), 200)  # raises on any stream invariant breach


class TestRunSeed:
    def test_run_seed_matches_cli_semantics(self):
        task = SeedTask(seed=2, quick=True, name_filter="monolithic")
        result = run_seed(task)
        assert result.ok
        assert result.scenario["seed"] == 2
        assert len(result.outcomes) == 3
        assert "--seed 2" in task.repro_command()
        assert "--filter monolithic" in task.repro_command()

    def test_parallel_and_serial_runs_agree(self):
        serial = run_validation([1, 2], quick=True, name_filter="monolithic-1c")
        parallel = run_validation(
            [1, 2], quick=True, name_filter="monolithic-1c", jobs=2
        )
        assert serial.ok and parallel.ok
        assert [s.oracle["digest"] for s in serial.scenarios] == [
            s.oracle["digest"] for s in parallel.scenarios
        ]


class TestCli:
    def test_quick_run_exits_zero(self, capsys):
        assert main(["--seeds", "2", "--quick", "--quiet",
                     "--filter", "monolithic-1c"]) == 0
        out = capsys.readouterr().out
        assert "verdict: OK" in out

    def test_list_mode(self, capsys):
        assert main(["--list"]) == 0
        out = capsys.readouterr().out
        assert "monolithic-1c" in out and "rfc-never-demand" in out

    def test_explicit_seeds_and_json_output(self, tmp_path, capsys):
        path = tmp_path / "report.json"
        code = main(["--seed", "4", "--seed", "6", "--quick", "--quiet",
                     "--filter", "monolithic-1c", "--json", str(path)])
        assert code == 0
        payload = json.loads(path.read_text(encoding="utf-8"))
        assert payload["seeds"] == [4, 6]
        assert payload["ok"] is True

    def test_injected_fault_fails_the_run(self, capsys):
        code = main(["--seed", "1", "--quick", "--quiet",
                     "--filter", "monolithic",
                     "--inject-fault", "monolithic-1c:13"])
        assert code == 1
        out = capsys.readouterr().out
        assert "verdict: DIVERGENT" in out
        assert "at commit 13" in out
        assert "--inject-fault monolithic-1c:13" in out  # repro line

    def test_bad_filter_is_a_usage_error(self, capsys):
        assert main(["--seeds", "1", "--filter", "nosucharch"]) == 2
        assert "matches nothing" in capsys.readouterr().err

    def test_bad_fault_spec_is_a_usage_error(self, capsys):
        assert main(["--seed", "1", "--inject-fault", "nocolon"]) == 2
        assert "fault" in capsys.readouterr().err

    def test_non_positive_seeds_rejected(self, capsys):
        assert main(["--seeds", "0"]) == 2
        assert "--seeds" in capsys.readouterr().err

    def test_non_positive_checkpoint_interval_rejected(self, capsys):
        assert main(["--seeds", "1", "--checkpoint-interval", "0"]) == 2
        assert "checkpoint" in capsys.readouterr().err
