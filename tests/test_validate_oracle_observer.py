"""Tests for the commit-stream observer and the architectural oracle."""

from __future__ import annotations

import pytest

from repro.errors import ValidationError
from repro.isa.instruction import DynamicInstruction, fp_reg, int_reg
from repro.isa.opcodes import OpClass
from repro.pipeline.processor import simulate
from repro.pipeline.stats import SimulationStats
from repro.validate.observer import (
    CommitObserver,
    CommitStreamAccumulator,
    commit_record,
)
from repro.validate.oracle import run_oracle
from repro.workloads.profiles import get_profile
from repro.workloads.synthetic import SyntheticWorkload
from repro.workloads.trace import materialize


def make_stream(name: str, count: int):
    return SyntheticWorkload(get_profile(name)).instructions(count)


def _tiny_stream():
    return [
        DynamicInstruction(seq=0, op_class=OpClass.INT_ALU, dest=int_reg(5)),
        DynamicInstruction(
            seq=1, op_class=OpClass.LOAD, dest=fp_reg(2),
            sources=(int_reg(5),), mem_address=0x2000,
        ),
        DynamicInstruction(
            seq=2, op_class=OpClass.BRANCH, sources=(int_reg(5), int_reg(0)),
            branch_taken=True, branch_target=0x1000,
        ),
        DynamicInstruction(seq=3, op_class=OpClass.INT_ALU, dest=int_reg(5)),
    ]


class TestCommitRecord:
    def test_captures_architectural_fields_only(self):
        load = _tiny_stream()[1]
        record = commit_record(load)
        assert record == "1|load|f2|r5|8192|"

    def test_branch_outcome_encoded(self):
        branch = _tiny_stream()[2]
        assert commit_record(branch).endswith("|T")
        branch.branch_taken = False
        assert commit_record(branch).endswith("|N")


class TestCommitStreamAccumulator:
    def test_state_tracks_youngest_committed_writer(self):
        accumulator = CommitStreamAccumulator()
        for instruction in _tiny_stream():
            accumulator.record(instruction)
        assert accumulator.count == 4
        assert accumulator.state_snapshot() == {"f2": 1, "r5": 3}

    def test_checkpoints_every_interval(self):
        accumulator = CommitStreamAccumulator(checkpoint_interval=2)
        for instruction in _tiny_stream():
            accumulator.record(instruction)
        assert [index for index, _ in accumulator.checkpoints] == [2, 4]
        # The final checkpoint digest is a prefix of the rolling digest.
        assert accumulator.digest().startswith(accumulator.checkpoints[-1][1])

    def test_rejects_bad_interval(self):
        with pytest.raises(ValueError):
            CommitStreamAccumulator(checkpoint_interval=0)

    def test_log_is_optional(self):
        accumulator = CommitStreamAccumulator(keep_log=False)
        accumulator.record(_tiny_stream()[0])
        assert accumulator.log is None
        assert accumulator.count == 1


class TestOracle:
    def test_consumes_exactly_the_committed_prefix(self):
        stream = _tiny_stream()
        result = run_oracle(iter(stream), max_instructions=3)
        assert result.count == 3
        assert len(result.log) == 3

    def test_short_stream_commits_everything(self):
        result = run_oracle(iter(_tiny_stream()), max_instructions=100)
        assert result.count == 4

    def test_rejects_non_contiguous_sequence(self):
        stream = _tiny_stream()
        stream[2].seq = 7
        with pytest.raises(ValidationError, match="contiguous"):
            run_oracle(iter(stream), max_instructions=10)

    def test_rejects_inconsistent_branch_flag(self):
        stream = _tiny_stream()
        stream[0].is_branch = True
        with pytest.raises(ValidationError, match="is_branch"):
            run_oracle(iter(stream), max_instructions=10)

    def test_rejects_memory_op_without_address(self):
        stream = _tiny_stream()
        stream[1].mem_address = None
        with pytest.raises(ValidationError, match="memory address"):
            run_oracle(iter(stream), max_instructions=10)

    def test_rejects_non_positive_budget(self):
        with pytest.raises(ValidationError):
            run_oracle(iter(_tiny_stream()), max_instructions=0)


class TestObserverOnPipeline:
    def test_pipeline_commit_stream_matches_oracle(self, tiny_config):
        trace = materialize("gcc", make_stream("gcc", 700))
        oracle = run_oracle(iter(trace), tiny_config.max_instructions)
        observer = CommitObserver()
        simulate(iter(trace), lambda: _one_cycle_regfile(), tiny_config,
                 commit_observer=observer)
        assert observer.accumulator.count == oracle.count
        assert observer.final_digest() == oracle.digest
        assert observer.accumulator.state_snapshot() == oracle.state

    def test_observer_does_not_perturb_statistics(self, tiny_config):
        trace = materialize("perl", make_stream("perl", 700))
        plain = simulate(iter(trace), lambda: _one_cycle_regfile(), tiny_config)
        observed = simulate(iter(trace), lambda: _one_cycle_regfile(), tiny_config,
                            commit_observer=CommitObserver())
        plain_payload = plain.to_dict()
        observed_payload = observed.to_dict()
        # The checksum is the only permitted difference.
        checksum = observed_payload.pop("commit_checksum")
        assert checksum
        assert "commit_checksum" not in plain_payload
        assert observed_payload == plain_payload

    def test_commit_checksum_round_trips(self):
        stats = SimulationStats(benchmark="x", commit_checksum="abc123")
        payload = stats.to_dict()
        assert payload["commit_checksum"] == "abc123"
        assert SimulationStats.from_dict(payload).commit_checksum == "abc123"

    def test_unset_checksum_is_excluded_from_serialization(self):
        payload = SimulationStats(benchmark="x").to_dict()
        assert "commit_checksum" not in payload
        assert SimulationStats.from_dict(payload).commit_checksum is None


def _one_cycle_regfile():
    from repro.regfile.monolithic import SingleBankedRegisterFile

    return SingleBankedRegisterFile(latency=1)
