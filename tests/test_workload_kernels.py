"""Unit tests for the hand-written ISA kernels."""

import pytest

from repro.isa.opcodes import OpClass
from repro.workloads.kernels import (
    KERNELS,
    dot_product_program,
    hash_lookup_program,
    kernel_workload,
    linked_list_walk_program,
    matmul_program,
    stencil_program,
    vector_scale_program,
)
from repro.workloads.trace import materialize


class TestKernelPrograms:
    def test_registry_contains_all_kernels(self):
        assert set(KERNELS) == {
            "dot_product", "vector_scale", "linked_list_walk",
            "stencil", "matmul", "hash_lookup",
        }

    def test_dot_product_dynamic_length(self):
        dynamic = list(dot_product_program(length=16).run())
        # 5 setup + 16 iterations of 8 instructions + final store
        assert len(dynamic) == 5 + 16 * 8 + 1

    def test_dot_product_has_fp_multiplies(self):
        trace = materialize("dot", dot_product_program(length=8).run())
        assert any(inst.op_class is OpClass.FP_MUL for inst in trace)

    def test_vector_scale_stores_every_iteration(self):
        trace = materialize("scale", vector_scale_program(length=10).run())
        stores = [i for i in trace if i.op_class is OpClass.STORE]
        assert len(stores) == 10

    def test_linked_list_walk_loads(self):
        trace = materialize("list", linked_list_walk_program(nodes=12).run())
        loads = [i for i in trace if i.op_class is OpClass.LOAD]
        assert len(loads) == 24  # two loads per node

    def test_stencil_nested_loops(self):
        trace = materialize("stencil", stencil_program(width=8, rows=3).run())
        branches = [i for i in trace if i.is_branch]
        assert len(branches) == 8 * 3 + 3

    def test_matmul_instruction_count_scales(self):
        small = len(list(matmul_program(size=2).run(max_instructions=100000)))
        large = len(list(matmul_program(size=4).run(max_instructions=100000)))
        assert large > small

    def test_hash_lookup_has_data_dependent_branches(self):
        trace = materialize("hash", hash_lookup_program(lookups=32).run())
        conditional = [i for i in trace
                       if i.is_branch and i.mnemonic in ("beq", "bne", "blt", "bge")]
        taken = sum(i.branch_taken for i in conditional)
        assert 0 < taken < len(conditional)

    def test_kernel_workload_helper(self):
        stream = list(kernel_workload("dot_product", max_instructions=50))
        assert len(stream) == 50

    def test_kernel_workload_unknown_name(self):
        with pytest.raises(KeyError):
            kernel_workload("fft")

    @pytest.mark.parametrize("name", sorted(KERNELS))
    def test_all_kernels_terminate(self, name):
        stream = list(kernel_workload(name, max_instructions=5000))
        assert 0 < len(stream) <= 5000
