"""Unit tests for the SPEC95-substitute benchmark profiles."""

import pytest

from repro.errors import WorkloadError
from repro.isa.opcodes import OpClass
from repro.workloads.profiles import (
    BenchmarkProfile,
    BranchProfile,
    MemoryProfile,
    all_profiles,
    get_profile,
)
from repro.workloads.spec_suites import SPECFP95, SPECINT95, SPEC95, suite_for, suite_members


class TestSuites:
    def test_suite_sizes_match_spec95(self):
        assert len(SPECINT95) == 8
        assert len(SPECFP95) == 10
        assert len(SPEC95) == 18

    def test_suite_for(self):
        assert suite_for("gcc") == "int"
        assert suite_for("swim") == "fp"

    def test_suite_for_unknown(self):
        with pytest.raises(WorkloadError):
            suite_for("doom")

    def test_suite_members(self):
        assert suite_members("int") == SPECINT95
        assert suite_members("fp") == SPECFP95
        with pytest.raises(WorkloadError):
            suite_members("web")


class TestProfiles:
    def test_every_spec95_benchmark_has_a_profile(self):
        profiles = all_profiles()
        for name in SPEC95:
            assert name in profiles

    def test_profile_suites_are_consistent(self):
        for name in SPECINT95:
            assert get_profile(name).suite == "int"
        for name in SPECFP95:
            assert get_profile(name).suite == "fp"

    def test_instruction_mixes_sum_to_one(self):
        for profile in all_profiles().values():
            assert sum(profile.instruction_mix.values()) == pytest.approx(1.0, abs=0.01)

    def test_fp_profiles_contain_fp_operations(self):
        for name in SPECFP95:
            mix = get_profile(name).instruction_mix
            fp_fraction = sum(frac for cls, frac in mix.items() if cls.is_fp)
            assert fp_fraction > 0.2

    def test_int_profiles_have_no_fp_operations(self):
        for name in SPECINT95:
            mix = get_profile(name).instruction_mix
            assert all(not cls.is_fp for cls in mix)

    def test_int_profiles_branch_heavier_than_fp(self):
        int_branches = [get_profile(n).instruction_mix.get(OpClass.BRANCH, 0.0)
                        for n in SPECINT95]
        fp_branches = [get_profile(n).instruction_mix.get(OpClass.BRANCH, 0.0)
                       for n in SPECFP95]
        assert min(int_branches) > max(fp_branches) - 0.02

    def test_unknown_benchmark_raises(self):
        with pytest.raises(WorkloadError):
            get_profile("quake")

    def test_profiles_have_unique_seeds(self):
        seeds = [p.seed for p in all_profiles().values()]
        assert len(seeds) == len(set(seeds))


class TestValidation:
    def _base_mix(self):
        return {OpClass.INT_ALU: 0.7, OpClass.LOAD: 0.2, OpClass.BRANCH: 0.1}

    def test_bad_suite_rejected(self):
        with pytest.raises(WorkloadError):
            BenchmarkProfile(name="x", suite="media", instruction_mix=self._base_mix())

    def test_mix_must_sum_to_one(self):
        with pytest.raises(WorkloadError):
            BenchmarkProfile(name="x", suite="int",
                             instruction_mix={OpClass.INT_ALU: 0.5})

    def test_read_fractions_must_not_exceed_one(self):
        with pytest.raises(WorkloadError):
            BenchmarkProfile(name="x", suite="int", instruction_mix=self._base_mix(),
                             read_once_fraction=0.9, read_twice_fraction=0.2,
                             never_read_fraction=0.2)

    def test_dependency_locality_bounds(self):
        with pytest.raises(WorkloadError):
            BenchmarkProfile(name="x", suite="int", instruction_mix=self._base_mix(),
                             dependency_locality=0.0)

    def test_defaults_are_valid(self):
        profile = BenchmarkProfile(name="x", suite="int", instruction_mix=self._base_mix())
        assert not profile.is_fp
        assert isinstance(profile.branches, BranchProfile)
        assert isinstance(profile.memory, MemoryProfile)
