"""Unit tests for the synthetic workload generator."""

import pytest

from repro.errors import WorkloadError
from repro.isa.opcodes import OpClass
from repro.workloads.profiles import get_profile
from repro.workloads.spec_suites import SPEC95
from repro.workloads.synthetic import SyntheticWorkload
from repro.workloads.trace import materialize


class TestDeterminism:
    def test_same_seed_same_stream(self):
        a = list(SyntheticWorkload(get_profile("gcc")).instructions(500))
        b = list(SyntheticWorkload(get_profile("gcc")).instructions(500))
        assert len(a) == len(b) == 500
        for x, y in zip(a, b):
            assert x.op_class is y.op_class
            assert x.dest == y.dest
            assert x.sources == y.sources
            assert x.branch_taken == y.branch_taken
            assert x.mem_address == y.mem_address

    def test_different_seed_different_stream(self):
        a = list(SyntheticWorkload(get_profile("gcc"), seed=1).instructions(500))
        b = list(SyntheticWorkload(get_profile("gcc"), seed=2).instructions(500))
        assert any(x.op_class is not y.op_class or x.sources != y.sources
                   for x, y in zip(a, b))

    def test_restart_reproduces_prefix(self):
        workload = SyntheticWorkload(get_profile("swim"))
        first = list(workload.instructions(200))
        second = list(workload.instructions(400))
        for x, y in zip(first, second[:200]):
            assert x.op_class is y.op_class and x.sources == y.sources


class TestStreamShape:
    def test_count_respected(self):
        stream = list(SyntheticWorkload(get_profile("li")).instructions(321))
        assert len(stream) == 321
        assert [inst.seq for inst in stream] == list(range(321))

    def test_positive_count_required(self):
        with pytest.raises(WorkloadError):
            list(SyntheticWorkload(get_profile("li")).instructions(0))

    def test_realized_mix_close_to_profile(self):
        profile = get_profile("gcc")
        trace = materialize("gcc", SyntheticWorkload(profile).instructions(8000))
        mix = trace.mix()
        for op_class, target in profile.instruction_mix.items():
            if target < 0.02:
                continue
            assert mix.get(op_class, 0.0) == pytest.approx(target, abs=0.03)

    def test_branches_have_targets_and_outcomes(self):
        stream = SyntheticWorkload(get_profile("compress")).instructions(2000)
        branches = [inst for inst in stream if inst.is_branch]
        assert branches, "expected some branches"
        assert all(inst.branch_target > 0 for inst in branches)
        taken_fraction = sum(b.branch_taken for b in branches) / len(branches)
        assert 0.3 < taken_fraction < 1.0

    def test_memory_instructions_have_addresses(self):
        stream = SyntheticWorkload(get_profile("swim")).instructions(2000)
        for inst in stream:
            if inst.op_class.is_memory:
                assert inst.mem_address is not None and inst.mem_address > 0

    def test_fp_benchmark_uses_fp_registers(self):
        stream = SyntheticWorkload(get_profile("tomcatv")).instructions(2000)
        fp_dests = sum(1 for inst in stream
                       if inst.dest is not None and inst.dest.reg_class.value == "fp")
        assert fp_dests > 200

    def test_int_benchmark_has_no_fp_ops(self):
        stream = SyntheticWorkload(get_profile("go")).instructions(2000)
        assert all(not inst.op_class.is_fp for inst in stream)

    def test_sources_match_op_class_arity(self):
        for inst in SyntheticWorkload(get_profile("perl")).instructions(2000):
            if inst.op_class is OpClass.LOAD:
                assert len(inst.sources) == 1
            elif inst.op_class is OpClass.NOP:
                assert len(inst.sources) == 0
            else:
                assert len(inst.sources) <= 2


class TestPaperProperties:
    """Properties the paper's argument relies on."""

    @pytest.mark.parametrize("name", ["gcc", "swim", "ijpeg", "mgrid"])
    def test_most_values_read_at_most_twice(self, name):
        trace = materialize(name, SyntheticWorkload(get_profile(name)).instructions(6000))
        distribution = trace.value_read_counts()
        total = sum(distribution.values())
        at_most_two = sum(count for reads, count in distribution.items() if reads <= 2)
        assert at_most_two / total > 0.8

    def test_every_benchmark_generates(self):
        for name in SPEC95:
            stream = list(SyntheticWorkload(get_profile(name)).instructions(300))
            assert len(stream) == 300
