"""Unit tests for trace materialization and statistics."""

from repro.isa.instruction import DynamicInstruction, INT_LOGICAL_REGISTERS
from repro.isa.opcodes import OpClass
from repro.workloads.profiles import get_profile
from repro.workloads.synthetic import SyntheticWorkload
from repro.workloads.trace import Trace, materialize


def _alu(seq, dest, sources=()):
    return DynamicInstruction(seq=seq, op_class=OpClass.INT_ALU,
                              dest=INT_LOGICAL_REGISTERS[dest],
                              sources=tuple(INT_LOGICAL_REGISTERS[s] for s in sources))


class TestTrace:
    def test_materialize_and_len(self):
        trace = materialize("t", [_alu(0, 1), _alu(1, 2, (1,))])
        assert len(trace) == 2
        assert trace[0].seq == 0
        assert list(iter(trace))[1].seq == 1

    def test_mix_fractions(self):
        trace = materialize("t", [_alu(0, 1), _alu(1, 2), DynamicInstruction(
            seq=2, op_class=OpClass.BRANCH, branch_taken=True)])
        mix = trace.mix()
        assert mix[OpClass.INT_ALU] == 2 / 3
        assert mix[OpClass.BRANCH] == 1 / 3

    def test_branch_statistics(self):
        instructions = [
            DynamicInstruction(seq=0, op_class=OpClass.BRANCH, branch_taken=True),
            DynamicInstruction(seq=1, op_class=OpClass.BRANCH, branch_taken=False),
        ]
        trace = Trace("b", instructions)
        assert trace.branch_count() == 2
        assert trace.taken_branch_fraction() == 0.5

    def test_counts_on_empty_branchless_trace(self):
        trace = materialize("t", [_alu(0, 1)])
        assert trace.taken_branch_fraction() == 0.0
        assert trace.memory_reference_count() == 0
        assert trace.register_write_count() == 1

    def test_value_read_counts(self):
        # r1 written then read twice; r2 written and never read.
        instructions = [
            _alu(0, 1),
            _alu(1, 2, (1,)),
            _alu(2, 3, (1,)),
        ]
        trace = materialize("t", instructions)
        distribution = trace.value_read_counts()
        assert distribution[2] == 1   # the value in r1
        assert distribution[0] == 2   # r2 and r3 never read

    def test_read_at_most_once_fraction_bounds(self):
        workload = SyntheticWorkload(get_profile("vortex"))
        trace = materialize("vortex", workload.instructions(4000))
        fraction = trace.read_at_most_once_fraction()
        assert 0.0 < fraction <= 1.0

    def test_overwrite_ends_value_lifetime(self):
        # r1 written, overwritten, then read: the read belongs to the second value.
        instructions = [
            _alu(0, 1),
            _alu(1, 1),
            _alu(2, 2, (1,)),
        ]
        distribution = materialize("t", instructions).value_read_counts()
        assert distribution[0] >= 1  # the first r1 value was never read
        assert distribution[1] >= 1  # the second one was read once
