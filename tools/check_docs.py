#!/usr/bin/env python3
"""Docs drift gate: dead links and undocumented CLI flags.

Two checks, both stdlib-only, run by the CI ``docs`` job (and runnable
locally with ``python tools/check_docs.py``):

1. **Links** — every intra-repository markdown link in ``docs/*.md``
   and ``README.md`` must resolve to an existing file (external
   ``http(s)``/``mailto`` links and pure ``#anchor`` links are
   skipped; a fragment on a file link is stripped before resolving).
2. **CLI flags** — every ``--flag`` a subsystem CLI defines (parsed
   from its live ``--help`` output, so the check cannot go stale) must
   be mentioned, verbatim, in that subsystem's document.  A new flag
   without documentation, or a renamed flag leaving a stale mention
   behind a dead name, fails the build.

Exit codes: 0 clean, 1 drift found, 2 environment error (a CLI's
``--help`` could not be produced).
"""

from __future__ import annotations

import os
import re
import subprocess
import sys

ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

#: (module, subcommand or None, doc that must mention its flags).
CLI_DOC_MAP = [
    ("repro.experiments.runner", None, "docs/experiments.md"),
    ("repro.validate", None, "docs/validation.md"),
    ("repro.sampling", None, "docs/sampling.md"),
    ("repro.bench", None, "docs/benchmarking.md"),
    ("repro.bench", "compare", "docs/benchmarking.md"),
    ("repro.service", "serve", "docs/service.md"),
    ("repro.service", "submit", "docs/service.md"),
    ("repro.service", "search", "docs/search.md"),
    ("repro.service", "frontier", "docs/search.md"),
    ("repro.service", "status", "docs/service.md"),
    ("repro.service", "result", "docs/service.md"),
    ("repro.service", "watch", "docs/service.md"),
    ("repro.service", "metrics", "docs/service.md"),
    ("repro.service", "health", "docs/service.md"),
    ("repro.chaos", None, "docs/robustness.md"),
    ("repro.obs", "report", "docs/observability.md"),
]

#: Markdown inline links: [text](target).  Reference-style links and
#: autolinks are not used in this repository's docs.
_LINK = re.compile(r"\[[^\]]*\]\(([^()\s]+)\)")

#: A flag *definition* line in argparse help output: the option name at
#: the start of an indented line (possibly after a short option).
_FLAG_DEF = re.compile(r"^\s+(?:-\w,\s+)?(--[a-z][a-z0-9-]*)", re.MULTILINE)


def _doc_files() -> list:
    docs_dir = os.path.join(ROOT, "docs")
    files = sorted(
        os.path.join(docs_dir, name)
        for name in os.listdir(docs_dir)
        if name.endswith(".md")
    )
    files.append(os.path.join(ROOT, "README.md"))
    return files


def check_links() -> list:
    """Return one problem string per unresolvable intra-repo link."""
    problems = []
    for path in _doc_files():
        with open(path, "r", encoding="utf-8") as handle:
            text = handle.read()
        rel = os.path.relpath(path, ROOT)
        for match in _LINK.finditer(text):
            target = match.group(1)
            if target.startswith(("http://", "https://", "mailto:")):
                continue
            if target.startswith("#"):  # in-page anchor
                continue
            target = target.split("#", 1)[0]
            resolved = os.path.normpath(
                os.path.join(os.path.dirname(path), target)
            )
            if not os.path.exists(resolved):
                problems.append(f"{rel}: dead link -> {match.group(1)}")
    return problems


def cli_flags(module: str, subcommand: str) -> list:
    """The --flags ``python -m module [subcommand] --help`` defines."""
    argv = [sys.executable, "-m", module]
    if subcommand:
        argv.append(subcommand)
    argv.append("--help")
    env = dict(os.environ)
    src = os.path.join(ROOT, "src")
    env["PYTHONPATH"] = (
        src + os.pathsep + env["PYTHONPATH"]
        if env.get("PYTHONPATH") else src
    )
    proc = subprocess.run(
        argv, capture_output=True, text=True, timeout=60, env=env, cwd=ROOT
    )
    if proc.returncode != 0:
        raise RuntimeError(
            f"{' '.join(argv[1:])} exited {proc.returncode}: "
            f"{proc.stderr.strip()[:200]}"
        )
    flags = sorted(set(_FLAG_DEF.findall(proc.stdout)))
    return [flag for flag in flags if flag != "--help"]


def check_flags() -> list:
    """Return one problem string per CLI flag missing from its doc."""
    problems = []
    doc_cache = {}
    for module, subcommand, doc in CLI_DOC_MAP:
        if doc not in doc_cache:
            with open(os.path.join(ROOT, doc), "r", encoding="utf-8") as handle:
                doc_cache[doc] = handle.read()
        text = doc_cache[doc]
        label = f"python -m {module}" + (f" {subcommand}" if subcommand else "")
        for flag in cli_flags(module, subcommand):
            if flag not in text:
                problems.append(f"{doc}: `{label}` flag {flag} undocumented")
    return problems


def main() -> int:
    try:
        problems = check_links() + check_flags()
    except (RuntimeError, subprocess.SubprocessError, OSError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    for problem in problems:
        print(problem)
    docs = len(_doc_files())
    clis = len(CLI_DOC_MAP)
    if problems:
        print(f"check_docs: {len(problems)} problem(s) across "
              f"{docs} documents / {clis} CLIs")
        return 1
    print(f"check_docs: OK ({docs} documents, {clis} CLI surfaces, "
          "no dead links, no undocumented flags)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
